package telemetry

// Quantile extraction over histogram snapshots. A fixed-bucket histogram
// only knows how many observations fell in each bucket, so a quantile is
// an estimate: the bucket holding the target rank is found from the
// cumulative counts and the value is linearly interpolated between the
// bucket's bounds, the standard Prometheus histogram_quantile estimator.
// Two honesty rules keep the estimate from inventing precision:
//
//   - The open +Inf bucket has no upper bound to interpolate toward, so
//     any quantile landing there clamps to the bucket's LOWER bound (the
//     largest finite bound). A p999 of "at least 1s" is reported as 1s,
//     never as a fabricated midpoint of an unbounded interval.
//   - An empty histogram has no quantiles; Quantile returns 0 and callers
//     that need to distinguish "no data" from "fast" check Count first.
//
// The first bucket interpolates from 0: all histograms here measure
// non-negative quantities (nanoseconds, depths, words).

// Quantile returns the estimated q-quantile (0 < q <= 1) of the
// observations in s, e.g. Quantile(0.99) for p99. Values below the first
// bound interpolate within [0, Bounds[0]]. It returns 0 when the
// histogram is empty or q is out of range.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if q <= 0 || q > 1 {
		return 0
	}
	total := s.Count()
	if total == 0 {
		return 0
	}
	// rank is the 1-based index of the target observation under the
	// usual "smallest value with cumulative fraction >= q" definition.
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(s.Bounds) {
				// Open top bucket: clamp to its lower bound rather than
				// fabricate a midpoint of [bound, +Inf).
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[i])
			// Position of the target rank within this bucket, in (0, 1].
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	// Unreachable with a consistent snapshot (cum reaches total); be
	// conservative if counts raced to zero.
	return 0
}

// Sub returns s - prev bucket-wise: the histogram of observations made
// between the two snapshots. Both must come from the same histogram (same
// bounds); the name and help of s are kept. Buckets that went backwards —
// a restarted process between scrapes — clamp to zero rather than going
// negative, matching how counter deltas are read.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := newHistogramSnapshot(s.Name, s.Help, s.Bounds)
	for i := range d.Counts {
		var p int64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		if c := s.Counts[i] - p; c > 0 {
			d.Counts[i] = c
		}
	}
	if d.Sum = s.Sum - prev.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	return d
}
