// Package telemetry is the runtime's always-on observability plane: a
// zero-dependency metrics layer the dispatch plane updates with a few
// atomics on its hot paths, exported as Prometheus text and expvar JSON
// over HTTP.
//
// The package deliberately knows nothing about the runtime. The runtime
// owns a T — a set of per-shard metric blocks sized to its dispatch-shard
// count — and observes into the block of the shard it is already touching,
// so telemetry adds no cross-shard cache-line traffic to stores that were
// sharded apart on purpose. Exporters consume a Snapshot the runtime
// builds (see the Source interface); counter consistency is the runtime's
// contract (core.Runtime.Stats sums per-shard counters under the shard
// locks), histogram consistency is handled here by deriving each
// histogram's count from its bucket sums.
package telemetry

import "time"

// base anchors Now. Using a monotonic difference rather than wall-clock
// nanoseconds keeps latency arithmetic immune to clock steps.
var base = time.Now()

// Now returns monotonic nanoseconds since process start. It is the clock
// the runtime stamps queue entries with and never allocates.
func Now() int64 { return int64(time.Since(base)) }

// ShardMetrics is one dispatch shard's histogram block. The runtime
// observes into the block of the shard whose lock it already holds (or
// whose thread it is already dispatching), so concurrent producers on
// different shards never contend on a bucket counter.
type ShardMetrics struct {
	// TriggerLatency is trigger->dispatch latency in nanoseconds: from the
	// triggering store's enqueue to the instance leaving the queue.
	TriggerLatency Histogram
	// RunDuration is support-body execution time in nanoseconds.
	RunDuration Histogram
	// QueueDepth is the shard's pending-entry count sampled at each
	// enqueue (after the entry was admitted).
	QueueDepth Histogram
}

// T is a runtime's telemetry: per-shard metric blocks merged at snapshot
// time. The zero value is not usable; use New.
type T struct {
	shards []ShardMetrics
	// BatchSize is the words-per-call histogram of TStoreBatch/TStoreRange.
	// It is runtime-global rather than per-shard: a batch spans shards, and
	// one atomic observation per batch call (amortized over the whole span)
	// adds no meaningful cross-core traffic.
	BatchSize Histogram
	// MergeLatency is nanoseconds per update-plane merge (collect + apply
	// + dispatch), observed once per merge by the merging goroutine.
	MergeLatency Histogram
	// DeltaOccupancy is the distinct-dirty-word count each merge drained
	// from a privatized update plane.
	DeltaOccupancy Histogram
}

// New returns a T with one metric block per dispatch shard.
func New(shards int) *T {
	t := &T{shards: make([]ShardMetrics, shards)}
	for i := range t.shards {
		sm := &t.shards[i]
		sm.TriggerLatency.init(LatencyBounds)
		sm.RunDuration.init(LatencyBounds)
		sm.QueueDepth.init(DepthBounds)
	}
	t.BatchSize.init(BatchBounds)
	t.MergeLatency.init(LatencyBounds)
	t.DeltaOccupancy.init(BatchBounds)
	return t
}

// Shard returns shard i's metric block.
func (t *T) Shard(i int) *ShardMetrics { return &t.shards[i] }

// Shards returns the number of per-shard blocks.
func (t *T) Shards() int { return len(t.shards) }

// Histograms returns the histograms in a fixed order — trigger latency,
// run duration, queue depth merged across shards, then the global batch
// size, merge latency and delta occupancy — with their exported metric
// names attached. New histograms append at the end; consumers index into
// the prefix.
func (t *T) Histograms() []HistogramSnapshot {
	lat := newHistogramSnapshot("dtt_trigger_dispatch_latency_ns",
		"Nanoseconds from a trigger entering the thread queue to its instance dispatching", LatencyBounds)
	run := newHistogramSnapshot("dtt_run_duration_ns",
		"Support-thread body execution time in nanoseconds", LatencyBounds)
	depth := newHistogramSnapshot("dtt_queue_depth",
		"Shard thread-queue occupancy sampled at enqueue", DepthBounds)
	for i := range t.shards {
		sm := &t.shards[i]
		sm.TriggerLatency.addTo(&lat)
		sm.RunDuration.addTo(&run)
		sm.QueueDepth.addTo(&depth)
	}
	batch := newHistogramSnapshot("dtt_tstore_batch_size",
		"Words written per TStoreBatch/TStoreRange call", BatchBounds)
	t.BatchSize.addTo(&batch)
	merge := newHistogramSnapshot("dtt_merge_latency_ns",
		"Nanoseconds per update-plane merge (collect, apply, dispatch)", LatencyBounds)
	t.MergeLatency.addTo(&merge)
	occ := newHistogramSnapshot("dtt_merge_delta_words",
		"Distinct dirty words drained per update-plane merge", BatchBounds)
	t.DeltaOccupancy.addTo(&occ)
	return []HistogramSnapshot{lat, run, depth, batch, merge, occ}
}

// Metric is one exported counter or gauge sample.
type Metric struct {
	// Name is the full Prometheus metric name (dtt_*).
	Name string
	// Help is the one-line metric description.
	Help string
	// Value is the sample value.
	Value int64
}

// ShardSample is one dispatch shard's queue counters and current depth.
// Each sample independently obeys the thread-queue conservation invariant
// Enqueued = Dequeued + SquashedOut + Depth (it is read under that
// shard's lock).
type ShardSample struct {
	Enqueued    int64 `json:"enqueued"`
	Squashed    int64 `json:"squashed"`
	Overflowed  int64 `json:"overflowed"`
	Dequeued    int64 `json:"dequeued"`
	SquashedOut int64 `json:"squashed_out"`
	Depth       int   `json:"depth"`
	Peak        int   `json:"peak"`
}

// Snapshot is one consistent export of a runtime's metrics; exporters
// render it as Prometheus text (WritePrometheus) or expvar JSON
// (WriteVars). Counters must be internally consistent — the runtime
// builds them from a torn-free Stats read — so every scrape satisfies the
// counter identities the runtime documents.
type Snapshot struct {
	// Counters are the runtime's global monotonic counters, in render
	// order.
	Counters []Metric
	// Gauges are point-in-time values (shard count, queue capacity, ...).
	Gauges []Metric
	// Shards are the per-shard queue counters, indexed by shard.
	Shards []ShardSample
	// Histograms are the merged latency/duration/depth histograms.
	Histograms []HistogramSnapshot
}

// Source produces metric snapshots for an exporter. core.Runtime
// implements it.
type Source interface {
	TelemetrySnapshot() Snapshot
}
