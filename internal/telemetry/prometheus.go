package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders s in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single series, per-shard queue
// counters as shard-labelled series, histograms with cumulative le
// buckets. The identities the runtime documents — Fired = Enqueued +
// Squashed + Overflowed among the global counters, the queue conservation
// law per shard — hold within every scrape because the snapshot was built
// consistently.
func WritePrometheus(w io.Writer, s Snapshot) {
	for _, m := range s.Counters {
		writeMeta(w, m.Name, m.Help, "counter")
		fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
	}
	for _, m := range s.Gauges {
		writeMeta(w, m.Name, m.Help, "gauge")
		fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
	}
	writeShardSeries(w, s.Shards)
	for _, h := range s.Histograms {
		writeMeta(w, h.Name, h.Help, "histogram")
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.Name, b, cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		fmt.Fprintf(w, "%s_sum %d\n", h.Name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", h.Name, cum)
	}
}

// writeShardSeries renders the per-shard queue counters and depth gauge
// as shard-labelled families.
func writeShardSeries(w io.Writer, shards []ShardSample) {
	if len(shards) == 0 {
		return
	}
	series := []struct {
		name, help, typ string
		value           func(ShardSample) int64
	}{
		{"dtt_shard_enqueued_total", "Thread-queue entries admitted, per dispatch shard", "counter",
			func(s ShardSample) int64 { return s.Enqueued }},
		{"dtt_shard_squashed_total", "Trigger offers absorbed by duplicate squashing, per dispatch shard", "counter",
			func(s ShardSample) int64 { return s.Squashed }},
		{"dtt_shard_overflowed_total", "Trigger offers that found the shard queue full, per dispatch shard", "counter",
			func(s ShardSample) int64 { return s.Overflowed }},
		{"dtt_shard_dequeued_total", "Thread-queue entries dispatched, per dispatch shard", "counter",
			func(s ShardSample) int64 { return s.Dequeued }},
		{"dtt_shard_squashed_out_total", "Pending entries removed by tcancel, per dispatch shard", "counter",
			func(s ShardSample) int64 { return s.SquashedOut }},
		{"dtt_shard_queue_depth", "Current pending entries, per dispatch shard", "gauge",
			func(s ShardSample) int64 { return int64(s.Depth) }},
		{"dtt_shard_queue_peak", "Maximum pending entries ever observed, per dispatch shard", "gauge",
			func(s ShardSample) int64 { return int64(s.Peak) }},
	}
	for _, sr := range series {
		writeMeta(w, sr.name, sr.help, sr.typ)
		for i, sh := range shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", sr.name, i, sr.value(sh))
		}
	}
}

func writeMeta(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, promEscapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// promEscapeHelp escapes backslashes and newlines per the exposition
// format; metric help strings here are static ASCII, so this is a
// belt-and-braces guard rather than a hot path.
func promEscapeHelp(s string) string {
	for _, c := range s {
		if c == '\\' || c == '\n' {
			q := strconv.Quote(s)
			return q[1 : len(q)-1]
		}
	}
	return s
}
