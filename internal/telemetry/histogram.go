package telemetry

import (
	"fmt"
	"sync/atomic"
)

// LatencyBounds are the upper bucket bounds, in nanoseconds, of the
// latency and duration histograms: decade steps with 1/2.5/5 subdivisions
// through the microsecond range, coarsening above a millisecond. The top
// bucket is +Inf.
var LatencyBounds = []int64{
	100, 250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
}

// DepthBounds are the upper bucket bounds of the queue-depth histogram:
// powers of two through the largest per-shard capacities in use.
var DepthBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// BatchBounds are the upper bucket bounds of the batched-store size
// histogram: powers of two through the largest spans the workloads write
// in one TStoreBatch/TStoreRange call.
var BatchBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Observe is a short bounds scan plus two atomic adds and never
// allocates; there is no lock anywhere. The zero value is not usable;
// histograms are initialised by New as part of a ShardMetrics block.
type Histogram struct {
	bounds []int64
	// counts[i] counts observations v <= bounds[i] (and > bounds[i-1]);
	// counts[len(bounds)] is the +Inf bucket.
	counts []atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns a standalone histogram over the given ascending
// bucket bounds (the last implicit bucket is +Inf). Subsystems outside the
// per-shard ShardMetrics blocks — the serving plane's trigger-to-notify
// latency, for one — build their histograms this way and fold them into a
// Snapshot via Histogram.Snapshot.
func NewHistogram(bounds []int64) *Histogram {
	h := &Histogram{}
	h.init(bounds)
	return h
}

// Snapshot returns a point-in-time copy of the histogram under the given
// metric name, suitable for appending to Snapshot.Histograms.
func (h *Histogram) Snapshot(name, help string) HistogramSnapshot {
	s := newHistogramSnapshot(name, help, h.bounds)
	h.addTo(&s)
	return s
}

func (h *Histogram) init(bounds []int64) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	h.bounds = bounds
	h.counts = make([]atomic.Int64, len(bounds)+1)
}

// Observe records one value. Negative values (a clock anomaly) clamp to
// zero so they cannot drive the sum negative.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// addTo accumulates this histogram's buckets into s, which must have been
// built over the same bounds.
func (h *Histogram) addTo(s *HistogramSnapshot) {
	if len(s.Counts) != len(h.counts) {
		panic(fmt.Sprintf("telemetry: merging histogram with %d buckets into snapshot with %d", len(h.counts), len(s.Counts)))
	}
	for i := range h.counts {
		s.Counts[i] += h.counts[i].Load()
	}
	s.Sum += h.sum.Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// HistogramSnapshot is a merged, point-in-time copy of a histogram.
// Count is always the sum of Counts, computed rather than read from a
// separate counter, so a snapshot taken during concurrent observation is
// internally consistent (Prometheus requires the +Inf cumulative bucket
// to equal _count). Sum is read separately and may lag the buckets by the
// few observations in flight.
type HistogramSnapshot struct {
	Name   string  `json:"-"`
	Help   string  `json:"-"`
	Bounds []int64 `json:"bounds"`
	// Counts[i] is the (non-cumulative) count of bucket i; the last
	// element is the +Inf bucket.
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
}

func newHistogramSnapshot(name, help string, bounds []int64) HistogramSnapshot {
	return HistogramSnapshot{Name: name, Help: help, Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// Count returns the total observation count of the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}
