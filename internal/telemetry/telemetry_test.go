package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	tel := New(1)
	h := &tel.Shard(0).QueueDepth // bounds 1,2,4,...
	for _, v := range []int64{0, 1, 2, 3, 5000, -7} {
		h.Observe(v)
	}
	snap := tel.Histograms()[2]
	if snap.Name != "dtt_queue_depth" {
		t.Fatalf("histogram order changed: got %q", snap.Name)
	}
	// 0, 1 and the clamped -7 land in the <=1 bucket, 2 in <=2, 3 in <=4,
	// 5000 in +Inf.
	if got := snap.Counts[0]; got != 3 {
		t.Errorf("<=1 bucket = %d, want 3", got)
	}
	if got := snap.Counts[1]; got != 1 {
		t.Errorf("<=2 bucket = %d, want 1", got)
	}
	if got := snap.Counts[2]; got != 1 {
		t.Errorf("<=4 bucket = %d, want 1", got)
	}
	if got := snap.Counts[len(snap.Counts)-1]; got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	if got, want := snap.Count(), int64(6); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got, want := snap.Sum, int64(0+1+2+3+5000); got != want {
		t.Errorf("Sum = %d, want %d", got, want)
	}
	if snap.Mean() <= 0 {
		t.Errorf("Mean = %v, want > 0", snap.Mean())
	}
}

func TestHistogramMergeAcrossShards(t *testing.T) {
	tel := New(4)
	for i := 0; i < tel.Shards(); i++ {
		tel.Shard(i).RunDuration.Observe(int64(1000 * (i + 1)))
	}
	run := tel.Histograms()[1]
	if got, want := run.Count(), int64(4); got != want {
		t.Fatalf("merged Count = %d, want %d", got, want)
	}
	if got, want := run.Sum, int64(1000+2000+3000+4000); got != want {
		t.Fatalf("merged Sum = %d, want %d", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	tel := New(2)
	const perG, gs = 5000, 8
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := &tel.Shard(g % 2).TriggerLatency
			for i := 0; i < perG; i++ {
				h.Observe(int64(i))
			}
		}(g)
	}
	wg.Wait()
	if got, want := tel.Histograms()[0].Count(), int64(perG*gs); got != want {
		t.Fatalf("concurrent Count = %d, want %d", got, want)
	}
}

// staticSource serves a fixed snapshot, standing in for a runtime.
type staticSource struct{ snap Snapshot }

func (s staticSource) TelemetrySnapshot() Snapshot { return s.snap }

func testSnapshot() Snapshot {
	tel := New(2)
	tel.Shard(0).TriggerLatency.Observe(700)
	tel.Shard(1).TriggerLatency.Observe(70_000)
	tel.Shard(0).QueueDepth.Observe(3)
	return Snapshot{
		Counters: []Metric{
			{Name: "dtt_tstores_total", Help: "triggering stores issued", Value: 42},
			{Name: "dtt_fired_total", Help: "triggers fired", Value: 7},
		},
		Gauges: []Metric{{Name: "dtt_shards", Help: "dispatch shards", Value: 2}},
		Shards: []ShardSample{
			{Enqueued: 5, Dequeued: 4, Depth: 1, Peak: 2},
			{Enqueued: 2, Dequeued: 2, SquashedOut: 0, Depth: 0, Peak: 1},
		},
		Histograms: tel.Histograms(),
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, testSnapshot())
	out := b.String()
	for _, want := range []string{
		"# HELP dtt_tstores_total triggering stores issued",
		"# TYPE dtt_tstores_total counter",
		"dtt_tstores_total 42",
		"# TYPE dtt_shards gauge",
		"dtt_shards 2",
		"dtt_shard_enqueued_total{shard=\"0\"} 5",
		"dtt_shard_enqueued_total{shard=\"1\"} 2",
		"dtt_shard_queue_depth{shard=\"0\"} 1",
		"# TYPE dtt_trigger_dispatch_latency_ns histogram",
		"dtt_trigger_dispatch_latency_ns_bucket{le=\"1000\"} 1",
		"dtt_trigger_dispatch_latency_ns_bucket{le=\"+Inf\"} 2",
		"dtt_trigger_dispatch_latency_ns_sum 70700",
		"dtt_trigger_dispatch_latency_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

// TestWritePrometheusCumulative pins the le buckets to be cumulative: the
// 70µs observation must appear in every bucket at or above its own.
func TestWritePrometheusCumulative(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, testSnapshot())
	out := b.String()
	if !strings.Contains(out, "dtt_trigger_dispatch_latency_ns_bucket{le=\"100000\"} 2") {
		t.Fatalf("bucket counts not cumulative:\n%s", out)
	}
}

func TestWriteVarsParses(t *testing.T) {
	var b strings.Builder
	if err := WriteVars(&b, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("vars output is not valid JSON: %v\n%s", err, b.String())
	}
	// The standard expvar keys ride along with ours.
	for _, key := range []string{"cmdline", "memstats", "dtt"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("vars output missing %q", key)
		}
	}
	var p varsPayload
	if err := json.Unmarshal(doc["dtt"], &p); err != nil {
		t.Fatal(err)
	}
	if p.Counters["tstores"] != 42 {
		t.Errorf("counters.tstores = %d, want 42", p.Counters["tstores"])
	}
	if p.Gauges["shards"] != 2 {
		t.Errorf("gauges.shards = %d, want 2", p.Gauges["shards"])
	}
	if len(p.Shards) != 2 || p.Shards[0].Enqueued != 5 {
		t.Errorf("shards = %+v, want 2 samples with shard0 enqueued 5", p.Shards)
	}
	h, ok := p.Histograms["trigger_dispatch_latency_ns"]
	if !ok || h.Sum != 70700 {
		t.Errorf("histograms.trigger_dispatch_latency_ns = %+v (ok=%v), want sum 70700", h, ok)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(staticSource{snap: testSnapshot()}))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "dtt_tstores_total 42") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	body, ctype = get("/debug/vars")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/vars content type %q", ctype)
	}
	if !strings.Contains(body, "\"tstores\":42") {
		t.Errorf("/debug/vars body missing counter:\n%s", body)
	}
}
