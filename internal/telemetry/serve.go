package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// varsPayload is the "dtt" value of the /debug/vars document. Counter and
// gauge keys are the Prometheus names with the dtt_ prefix and _total
// suffix stripped (dtt_inline_runs_total -> inline_runs), so the JSON
// stays readable and cmd/dttprof -live can index it directly.
type varsPayload struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Shards     []ShardSample                `json:"shards"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// varsKey converts a Prometheus metric name to its JSON key.
func varsKey(name string) string {
	return strings.TrimSuffix(strings.TrimPrefix(name, "dtt_"), "_total")
}

// varsDoc builds the expvar payload from a snapshot.
func varsDoc(s Snapshot) varsPayload {
	p := varsPayload{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Shards:     s.Shards,
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for _, m := range s.Counters {
		p.Counters[varsKey(m.Name)] = m.Value
	}
	for _, m := range s.Gauges {
		p.Gauges[varsKey(m.Name)] = m.Value
	}
	for _, h := range s.Histograms {
		p.Histograms[varsKey(h.Name)] = h
	}
	return p
}

// WriteVars renders the expvar document: the process's published expvar
// variables (cmdline, memstats, anything the embedding program added)
// plus a "dtt" object carrying the snapshot. The output is what the
// standard expvar handler would serve with dtt published as an
// expvar.Func, produced without touching the process-global registry so
// two runtimes exporting concurrently cannot collide on a name.
func WriteVars(w io.Writer, s Snapshot) error {
	dtt, err := json.Marshal(varsDoc(s))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "dtt" {
			return // ours wins; a stale global publish would duplicate the key
		}
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value)
	})
	fmt.Fprintf(w, "%q: %s\n}\n", "dtt", dtt)
	return nil
}

// Handler returns the exporter's HTTP handler: Prometheus text at
// /metrics, the expvar document at /debug/vars. Every request takes a
// fresh snapshot from src.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, src.TelemetrySnapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// The only error path is JSON-marshalling the snapshot, whose
		// types marshal unconditionally; dropping the scrape is the right
		// failure mode for an exporter regardless.
		_ = WriteVars(w, src.TelemetrySnapshot())
	})
	return mux
}

// Serve starts an HTTP exporter for src on ln and returns the server; the
// caller owns shutdown (srv.Close). The goroutine exits when the listener
// closes.
func Serve(ln net.Listener, src Source) *http.Server {
	srv := &http.Server{Handler: Handler(src)}
	go func() {
		// ErrServerClosed (and any listener error after Close) is the
		// normal exporter shutdown; there is no caller to report it to.
		_ = srv.Serve(ln)
	}()
	return srv
}
