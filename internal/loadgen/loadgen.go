// Package loadgen is the open-loop load plane of the serving-workload
// suite: a seeded Poisson arrival generator, a pacer that issues those
// arrivals against the wall clock without ever letting the system under
// test slow the schedule down, and a fitness-driven balancer that shifts
// offered load toward whichever scenario currently shows the worst tail.
//
// Open-loop means the arrival schedule is fixed before the system's
// responses are seen: an arrival that finds the driver still busy is
// issued late and its latency is measured FROM THE SCHEDULED TIME, not
// from when the driver got around to it. A closed-loop driver
// (store-as-fast-as-possible, one request outstanding) hides queueing
// delay by slowing its own offered load — the coordinated-omission trap —
// and measures throughput, not the latency a user arriving at a fixed
// rate would see. The pacer accounts every late arrival so a report can
// say how much of the tail is schedule slip rather than hide it.
//
// Determinism: the schedule derives from internal/sched's splitmix64
// stream, so the same seed and rate produce a byte-identical arrival
// schedule — a tail-latency regression reproduces from its seed the same
// way a scheduler interleaving does.
package loadgen

import (
	"math"
	"time"

	"dtt/internal/sched"
	"dtt/internal/telemetry"
)

// Arrivals is a seeded Poisson arrival schedule: successive Next calls
// return strictly non-decreasing nanosecond offsets from the stream's
// origin, with exponentially distributed gaps at the configured rate.
// It is not safe for concurrent use; each driver goroutine owns one.
type Arrivals struct {
	src  *sched.Scheduler
	rate float64 // arrivals per second
	at   int64   // offset of the most recently returned arrival, ns
}

// NewArrivals returns a Poisson arrival schedule at ratePerSec arrivals
// per second, fully determined by seed. It panics on a non-positive rate:
// an open-loop run without a target rate is a closed-loop run.
func NewArrivals(seed uint64, ratePerSec float64) *Arrivals {
	if ratePerSec <= 0 || math.IsInf(ratePerSec, 0) || math.IsNaN(ratePerSec) {
		panic("loadgen: arrival rate must be positive and finite")
	}
	return &Arrivals{src: sched.New(seed), rate: ratePerSec}
}

// Rate returns the configured arrival rate per second.
func (a *Arrivals) Rate() float64 { return a.rate }

// Next advances the schedule and returns the next arrival's offset in
// nanoseconds from the stream origin. The arrival-tick hot path: pure
// arithmetic on the splitmix64 draw, 0 allocs/op (gated by
// TestArrivalsFastPathAllocs and the Makefile allocs-gate).
func (a *Arrivals) Next() int64 {
	// Inverse-CDF exponential gap: -ln(1-u)/rate seconds, with u drawn
	// uniform in [0, 1) from the top 53 bits of the stream. 1-u is in
	// (0, 1], so the log is finite; u == 0 gives a zero gap, which is a
	// legal (simultaneous) Poisson arrival.
	u := float64(a.src.Uint64()>>11) * (1.0 / (1 << 53))
	gap := -math.Log1p(-u) / a.rate // seconds
	a.at += int64(gap * 1e9)
	return a.at
}

// Pacer issues an Arrivals schedule against the telemetry clock,
// accounting — not absorbing — schedule slip.
type Pacer struct {
	arr   *Arrivals
	start int64 // telemetry.Now at construction: the stream origin
	// late accounting: arrivals issued after their scheduled instant.
	lateCount int64
	lateMax   int64
	lateSum   int64
}

// NewPacer starts the schedule's origin clock now.
func NewPacer(a *Arrivals) *Pacer {
	return &Pacer{arr: a, start: telemetry.Now()}
}

// Tick blocks until the next scheduled arrival instant and returns that
// instant on the telemetry clock plus how late the arrival was issued
// (0 when the pacer woke on time). Latency measured from the returned
// scheduled instant includes queueing delay the driver itself caused —
// that is the open-loop contract. A behind-schedule Tick returns
// immediately: the schedule never stretches to match the system.
func (p *Pacer) Tick() (scheduled, late int64) {
	scheduled = p.start + p.arr.Next()
	now := telemetry.Now()
	if wait := scheduled - now; wait > 0 {
		time.Sleep(time.Duration(wait))
		return scheduled, 0
	}
	late = now - scheduled
	if late > 0 {
		p.lateCount++
		p.lateSum += late
		if late > p.lateMax {
			p.lateMax = late
		}
	}
	return scheduled, late
}

// Late reports the slip so far: how many arrivals were issued late, the
// worst lateness, and the summed lateness (all ns).
func (p *Pacer) Late() (count, max, sum int64) {
	return p.lateCount, p.lateMax, p.lateSum
}

// minShare is the floor on any scenario's load share: the balancer
// shifts load toward the worst tail but never starves a scenario
// completely, or its p99 would go stale and it could never be found
// regressing again — the same explore/exploit floor the fitness-driven
// seed schedulers keep.
const minShare = 0.05

// Balancer allocates offered load across scenarios by fitness, where
// fitness is the scenario's most recently observed p99 latency: the
// worst tail draws the most load, so the suite spends its budget
// hammering whatever currently looks slowest. With no observations the
// split is uniform. Not safe for concurrent use.
type Balancer struct {
	names   []string
	fitness []float64
}

// NewBalancer returns a balancer over the named scenarios.
func NewBalancer(names ...string) *Balancer {
	if len(names) == 0 {
		panic("loadgen: balancer over zero scenarios")
	}
	return &Balancer{names: names, fitness: make([]float64, len(names))}
}

// Names returns the scenario names, in index order.
func (b *Balancer) Names() []string { return b.names }

// Observe records scenario i's latest p99 (ns). Non-positive values
// clear the fitness back to "no data".
func (b *Balancer) Observe(i int, p99 float64) {
	if p99 < 0 {
		p99 = 0
	}
	b.fitness[i] = p99
}

// Share returns scenario i's current fraction of the offered load:
// fitness-proportional, floored at minShare, normalised to sum to 1.
// Scenarios without an observation share the load uniformly.
func (b *Balancer) Share(i int) float64 {
	var sum float64
	for _, f := range b.fitness {
		sum += f
	}
	n := float64(len(b.fitness))
	if sum == 0 {
		return 1 / n
	}
	raw := b.fitness[i] / sum
	// Floor, then renormalise the remaining mass over the raw shares.
	if raw < minShare {
		return minShare
	}
	// Scale the above-floor shares into the mass the floors left over.
	var floored float64
	var above float64
	for _, f := range b.fitness {
		r := f / sum
		if r < minShare {
			floored += minShare
		} else {
			above += r
		}
	}
	if above == 0 {
		return 1 / n
	}
	return raw * (1 - floored) / above
}

// Pick selects a scenario index from a uniform draw (e.g.
// sched.Scheduler.Uint64), weighted by Share. Deterministic given the
// draw, so a whole sweep replays from one seed.
func (b *Balancer) Pick(draw uint64) int {
	u := float64(draw>>11) * (1.0 / (1 << 53))
	var cum float64
	for i := range b.fitness {
		cum += b.Share(i)
		if u < cum {
			return i
		}
	}
	return len(b.fitness) - 1
}
