package loadgen

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"dtt/internal/sched"
)

// TestArrivalsDeterministic: the same seed and rate must produce a
// byte-identical arrival schedule — the property that lets a tail-latency
// regression replay from its seed.
func TestArrivalsDeterministic(t *testing.T) {
	const n = 10000
	render := func(seed uint64, rate float64) []byte {
		a := NewArrivals(seed, rate)
		buf := make([]byte, 0, 8*n)
		for i := 0; i < n; i++ {
			buf = binary.BigEndian.AppendUint64(buf, uint64(a.Next()))
		}
		return buf
	}
	x, y := render(42, 50_000), render(42, 50_000)
	if string(x) != string(y) {
		t.Fatal("same seed produced different arrival schedules")
	}
	if string(x) == string(render(43, 50_000)) {
		t.Fatal("different seeds produced identical schedules")
	}
	if string(x) == string(render(42, 25_000)) {
		t.Fatal("different rates produced identical schedules")
	}
}

// TestArrivalsRate: the empirical mean inter-arrival gap converges to
// 1/rate, and the schedule is non-decreasing.
func TestArrivalsRate(t *testing.T) {
	const (
		n    = 200_000
		rate = 10_000.0 // 10k/s -> 100µs mean gap
	)
	a := NewArrivals(7, rate)
	prev := int64(0)
	for i := 0; i < n; i++ {
		at := a.Next()
		if at < prev {
			t.Fatalf("arrival %d at %d before previous %d", i, at, prev)
		}
		prev = at
	}
	meanGap := float64(prev) / n
	wantGap := 1e9 / rate
	if math.Abs(meanGap-wantGap)/wantGap > 0.02 {
		t.Errorf("mean gap %.1f ns, want %.1f ±2%%", meanGap, wantGap)
	}
}

// TestArrivalsFastPathAllocs is the loadgen half of the allocs-gate: the
// arrival tick is on every request's path and must not allocate.
func TestArrivalsFastPathAllocs(t *testing.T) {
	a := NewArrivals(1, 1000)
	if got := testing.AllocsPerRun(1000, func() { a.Next() }); got != 0 {
		t.Errorf("Arrivals.Next allocates %.1f allocs/op, want 0", got)
	}
}

func TestArrivalsRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewArrivals(rate=%v) did not panic", rate)
				}
			}()
			NewArrivals(1, rate)
		}()
	}
}

// TestPacerAccountsLateness: a pacer driven slower than its schedule
// issues arrivals late and says so, rather than stretching the schedule.
func TestPacerAccountsLateness(t *testing.T) {
	// 1M/s: 1µs mean gaps, far faster than the 1ms stalls below.
	p := NewPacer(NewArrivals(3, 1_000_000))
	var lateSeen int64
	for i := 0; i < 20; i++ {
		time.Sleep(time.Millisecond) // the driver falls behind
		_, late := p.Tick()
		lateSeen += late
	}
	count, max, sum := p.Late()
	if count == 0 || sum == 0 {
		t.Fatalf("no lateness recorded by a driver 1000x slower than its schedule (count=%d sum=%d)", count, sum)
	}
	if max < int64(time.Millisecond)/2 {
		t.Errorf("max lateness %d ns implausibly small for 1ms stalls", max)
	}
	if lateSeen != sum {
		t.Errorf("Tick returned %d total lateness, Late() sums %d", lateSeen, sum)
	}
}

// TestPacerOnTime: a schedule the driver easily keeps up with shows at
// most timer-granularity slip — never the ms-scale lateness a stalled
// driver accrues. (Exact zero is not promised: time.Sleep overshoots by
// the platform timer granularity, and an exponential schedule can draw a
// gap shorter than that overshoot.)
func TestPacerOnTime(t *testing.T) {
	p := NewPacer(NewArrivals(5, 1000)) // 1ms mean gaps
	for i := 0; i < 20; i++ {
		p.Tick()
	}
	if _, max, _ := p.Late(); max > int64(5*time.Millisecond) {
		t.Errorf("max lateness %d ns on an easy schedule; want < 5ms (timer granularity)", max)
	}
}

// TestBalancerShiftsTowardWorstTail: the scenario with the worst p99
// draws the largest share, shares sum to 1, and no scenario starves
// below the exploration floor.
func TestBalancerShiftsTowardWorstTail(t *testing.T) {
	b := NewBalancer("webcache", "matview", "pubsub", "leaderboard")
	// No data yet: uniform.
	for i := 0; i < 4; i++ {
		if got := b.Share(i); math.Abs(got-0.25) > 1e-9 {
			t.Errorf("no-data Share(%d) = %v, want 0.25", i, got)
		}
	}
	b.Observe(0, 1e6) // 1ms
	b.Observe(1, 8e6) // 8ms: the worst tail
	b.Observe(2, 1e6) // 1ms
	b.Observe(3, 1e4) // 10µs: nearly idle
	var sum float64
	for i := 0; i < 4; i++ {
		sum += b.Share(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
	if b.Share(1) <= b.Share(0) || b.Share(1) <= b.Share(3) {
		t.Errorf("worst tail did not get the largest share: %v %v %v %v",
			b.Share(0), b.Share(1), b.Share(2), b.Share(3))
	}
	if b.Share(3) < minShare-1e-9 {
		t.Errorf("Share(3) = %v below the %v exploration floor", b.Share(3), minShare)
	}

	// Pick follows the shares over the deterministic stream.
	src := sched.New(11)
	var picks [4]int
	const draws = 100_000
	for i := 0; i < draws; i++ {
		picks[b.Pick(src.Uint64())]++
	}
	for i := 0; i < 4; i++ {
		got := float64(picks[i]) / draws
		if math.Abs(got-b.Share(i)) > 0.01 {
			t.Errorf("Pick frequency of %d = %.3f, share %.3f", i, got, b.Share(i))
		}
	}
	// Deterministic: the same seed re-picks the same sequence.
	s1, s2 := sched.New(9), sched.New(9)
	for i := 0; i < 1000; i++ {
		if b.Pick(s1.Uint64()) != b.Pick(s2.Uint64()) {
			t.Fatal("Pick not deterministic under the same stream")
		}
	}
}
