package trace

import (
	"fmt"

	"dtt/internal/mem"
)

// Recorder builds a Trace from an instrumented run. It implements mem.Probe:
// attach it to the workload's mem.System and every load, store and compute
// event is charged to the currently open task. The DTT runtime drives the
// structural calls (CutMain, BeginSupport, EndSupport, Join).
//
// A Recorder may optionally classify loads through a cache hierarchy; with a
// nil hierarchy every load is charged as an L1 hit, which is useful in unit
// tests and for pure instruction-count studies.
type Recorder struct {
	hier  *mem.Hierarchy
	tasks []*Task
	main  []TaskID
	// cur is the task receiving probe events: the open support task while
	// one is being executed, otherwise the open main segment.
	cur     *Task
	curMain *Task
	support *Task
}

// NewRecorder returns a Recorder with an open initial main segment.
// hier may be nil to charge all loads as L1 hits.
func NewRecorder(hier *mem.Hierarchy) *Recorder {
	r := &Recorder{hier: hier}
	r.curMain = r.newTask(KindMain, "main", nil)
	r.main = append(r.main, r.curMain.ID)
	r.cur = r.curMain
	return r
}

func (r *Recorder) newTask(k Kind, label string, deps []TaskID) *Task {
	t := &Task{ID: TaskID(len(r.tasks)), Kind: k, Label: label, Deps: deps}
	r.tasks = append(r.tasks, t)
	return t
}

// OnLoad charges a load to the current task, classified by the hierarchy.
func (r *Recorder) OnLoad(addr mem.Addr, _ mem.Word) {
	lv := mem.LevelL1
	if r.hier != nil {
		lv = r.hier.Access(addr, false)
	}
	r.cur.Loads[lv]++
}

// OnStore charges a store to the current task.
func (r *Recorder) OnStore(addr mem.Addr, _, _ mem.Word, _ bool) {
	if r.hier != nil {
		r.hier.Access(addr, true)
	}
	r.cur.Stores++
}

// OnCompute charges n ALU operations to the current task.
func (r *Recorder) OnCompute(n int64) { r.cur.Ops += n }

// NoteTStore reclassifies the store the runtime just performed as a
// triggering store, moving it from the plain-store to the tstore counter.
func (r *Recorder) NoteTStore() {
	if r.cur.Stores > 0 {
		r.cur.Stores--
	}
	r.cur.TStores++
}

// NoteMgmt charges n management/synchronisation instruction slots.
func (r *Recorder) NoteMgmt(n int64) { r.cur.Mgmt += n }

// NoteViolation marks a protocol-sanitizer violation against the current
// task, so a recorded trace localises where in the task DAG the discipline
// was broken.
func (r *Recorder) NoteViolation() { r.cur.Violations++ }

// CurrentMain returns the ID of the open main segment.
func (r *Recorder) CurrentMain() TaskID { return r.curMain.ID }

// CutMain closes the open main segment and opens a new one that depends on
// it. The runtime calls this when a trigger fires, so support tasks can be
// released at the exact point in main-thread progress where their data
// changed. It returns the ID of the segment that was closed.
func (r *Recorder) CutMain() TaskID {
	if r.support != nil {
		panic("trace: CutMain while a support task is open")
	}
	closed := r.curMain
	next := r.newTask(KindMain, "main", []TaskID{closed.ID})
	r.main = append(r.main, next.ID)
	r.curMain = next
	r.cur = next
	return closed.ID
}

// ReleasePoint returns the task a trigger fired just now should be released
// by. On the main thread this cuts the open main segment (the trigger marks
// an exact point in main-thread progress); inside a support task — a
// cascading trigger — it is the open support task itself, uncut.
func (r *Recorder) ReleasePoint() TaskID {
	if r.support != nil {
		return r.support.ID
	}
	return r.CutMain()
}

// BeginSupport opens a support task labelled label, released by task
// release (NoTask for no release edge). Probe events are charged to it
// until EndSupport. Support tasks cannot nest.
func (r *Recorder) BeginSupport(label string, release TaskID) {
	if r.support != nil {
		panic("trace: BeginSupport while another support task is open")
	}
	var deps []TaskID
	if release != NoTask {
		deps = []TaskID{release}
	}
	r.support = r.newTask(KindSupport, label, deps)
	r.cur = r.support
}

// EndSupport closes the open support task and returns its ID.
func (r *Recorder) EndSupport() TaskID {
	if r.support == nil {
		panic("trace: EndSupport without BeginSupport")
	}
	id := r.support.ID
	r.support = nil
	r.cur = r.curMain
	return id
}

// Join closes the open main segment and opens a new one that depends on the
// closed segment and on every task in deps. The runtime calls this at twait
// and tbarrier.
func (r *Recorder) Join(deps []TaskID) {
	if r.support != nil {
		panic("trace: Join while a support task is open")
	}
	closed := r.curMain
	all := make([]TaskID, 0, len(deps)+1)
	all = append(all, closed.ID)
	all = append(all, deps...)
	next := r.newTask(KindMain, "main", all)
	r.main = append(r.main, next.ID)
	r.curMain = next
	r.cur = next
}

// Finish validates and returns the recorded trace. The recorder must not be
// used afterwards.
func (r *Recorder) Finish() (*Trace, error) {
	if r.support != nil {
		return nil, fmt.Errorf("trace: Finish with an open support task")
	}
	tr := &Trace{Tasks: r.tasks, Main: r.main}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

var _ mem.Probe = (*Recorder)(nil)
