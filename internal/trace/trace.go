// Package trace records the dynamic task graph of an instrumented workload
// run. The main thread is a chain of segments, cut wherever a trigger fires
// or a synchronisation point joins support threads back in; each executed
// support-thread instance is a task released by the main segment in which
// its (last) trigger fired. The timing simulator in internal/sim schedules
// this DAG onto an SMT machine model.
package trace

import (
	"fmt"

	"dtt/internal/mem"
)

// TaskID indexes a task within its Trace.
type TaskID int

// NoTask is the zero dependency (no release edge).
const NoTask TaskID = -1

// Kind distinguishes main-thread segments from support-thread instances.
type Kind int

// Task kinds.
const (
	KindMain Kind = iota
	KindSupport
)

// String returns the kind name.
func (k Kind) String() string {
	if k == KindMain {
		return "main"
	}
	return "support"
}

// Task aggregates the dynamic work of one schedulable unit.
type Task struct {
	ID    TaskID
	Kind  Kind
	Label string

	// Ops counts abstract ALU operations.
	Ops int64
	// Loads counts loads by the hierarchy level that satisfied them;
	// index with mem.LevelL1..mem.LevelMem.
	Loads [mem.LevelMem + 1]int64
	// Stores counts ordinary stores.
	Stores int64
	// TStores counts triggering stores (charged extra front-end latency).
	TStores int64
	// Mgmt counts DTT management/synchronisation instructions.
	Mgmt int64
	// Violations counts protocol-sanitizer violations detected while this
	// task was the open one. Violations are diagnostic events, not
	// instructions; they do not contribute to Instructions().
	Violations int64

	// Deps are the tasks that must complete before this one may start.
	Deps []TaskID
}

// Instructions returns the committed dynamic instruction count of the task.
func (t *Task) Instructions() int64 {
	var loads int64
	for _, n := range t.Loads {
		loads += n
	}
	return t.Ops + loads + t.Stores + t.TStores + t.Mgmt
}

// TotalLoads returns the load count across all levels.
func (t *Task) TotalLoads() int64 {
	var n int64
	for _, v := range t.Loads {
		n += v
	}
	return n
}

// Trace is a complete recorded run.
type Trace struct {
	Tasks []*Task
	// Main holds the main-chain task IDs in program order. Each main task
	// implicitly depends on its predecessor in this chain (the recorder
	// adds the edge explicitly as well).
	Main []TaskID
}

// Task returns the task with the given id.
func (tr *Trace) Task(id TaskID) *Task { return tr.Tasks[id] }

// Instructions returns the committed instruction count of the whole trace.
func (tr *Trace) Instructions() int64 {
	var n int64
	for _, t := range tr.Tasks {
		n += t.Instructions()
	}
	return n
}

// Violations returns the total sanitizer violations recorded across all
// tasks.
func (tr *Trace) Violations() int64 {
	var n int64
	for _, t := range tr.Tasks {
		n += t.Violations
	}
	return n
}

// SupportTasks returns the number of support-thread instances in the trace.
func (tr *Trace) SupportTasks() int {
	n := 0
	for _, t := range tr.Tasks {
		if t.Kind == KindSupport {
			n++
		}
	}
	return n
}

// Serialize flattens the trace into a single main chain: every task, in
// creation order, becomes a main-chain segment depending only on its
// predecessor. Work that the DTT run skipped stays skipped, but nothing
// overlaps — this is the "redundancy elimination without parallelism"
// configuration of the paper's speedup decomposition. Creation order is
// program order for main segments and execution order for support
// instances, so the flattening is exactly what a one-context machine
// running the same program would do.
func (tr *Trace) Serialize() *Trace {
	out := &Trace{Tasks: make([]*Task, len(tr.Tasks)), Main: make([]TaskID, len(tr.Tasks))}
	for i, t := range tr.Tasks {
		c := *t
		c.Kind = KindMain
		c.ID = TaskID(i)
		if i == 0 {
			c.Deps = nil
		} else {
			c.Deps = []TaskID{TaskID(i - 1)}
		}
		out.Tasks[i] = &c
		out.Main[i] = c.ID
	}
	return out
}

// Validate checks structural invariants: dependency IDs in range, no
// forward (not-yet-created) dependencies, and a non-empty main chain.
func (tr *Trace) Validate() error {
	if len(tr.Main) == 0 {
		return fmt.Errorf("trace: empty main chain")
	}
	for _, t := range tr.Tasks {
		for _, d := range t.Deps {
			if d < 0 || int(d) >= len(tr.Tasks) {
				return fmt.Errorf("trace: task %d depends on out-of-range task %d", t.ID, d)
			}
			if d >= t.ID {
				return fmt.Errorf("trace: task %d depends on later task %d (cycle)", t.ID, d)
			}
		}
	}
	for i, id := range tr.Main {
		if tr.Tasks[id].Kind != KindMain {
			return fmt.Errorf("trace: main chain entry %d (task %d) is not a main task", i, id)
		}
	}
	return nil
}
