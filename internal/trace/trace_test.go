package trace

import (
	"testing"

	"dtt/internal/mem"
)

func TestRecorderMainOnly(t *testing.T) {
	r := NewRecorder(nil)
	r.OnCompute(100)
	r.OnLoad(0x40, 0)
	r.OnStore(0x48, 0, 1, false)
	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 1 || len(tr.Main) != 1 {
		t.Fatalf("tasks=%d main=%d, want 1/1", len(tr.Tasks), len(tr.Main))
	}
	m := tr.Task(tr.Main[0])
	if m.Ops != 100 || m.TotalLoads() != 1 || m.Stores != 1 {
		t.Fatalf("main task mis-charged: %+v", m)
	}
	if m.Instructions() != 102 {
		t.Fatalf("Instructions = %d, want 102", m.Instructions())
	}
}

func TestRecorderCutAndSupport(t *testing.T) {
	r := NewRecorder(nil)
	r.OnCompute(10)
	release := r.CutMain()
	r.OnCompute(5) // lands in the new main segment

	r.BeginSupport("sup", release)
	r.OnCompute(7)
	r.OnLoad(0x100, 0)
	sup := r.EndSupport()

	r.OnCompute(3) // back on main
	r.Join([]TaskID{sup})
	r.OnCompute(1)

	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.SupportTasks(); got != 1 {
		t.Fatalf("SupportTasks = %d", got)
	}
	st := tr.Task(sup)
	if st.Kind != KindSupport || st.Ops != 7 || st.TotalLoads() != 1 {
		t.Fatalf("support task mis-charged: %+v", st)
	}
	if len(st.Deps) != 1 || st.Deps[0] != release {
		t.Fatalf("support deps = %v, want [%d]", st.Deps, release)
	}
	// Main chain: seg0(10 ops) -> seg1(5+3 ops) -> seg2(1 op).
	if len(tr.Main) != 3 {
		t.Fatalf("main chain length %d, want 3", len(tr.Main))
	}
	seg1 := tr.Task(tr.Main[1])
	if seg1.Ops != 8 {
		t.Fatalf("middle segment ops = %d, want 8", seg1.Ops)
	}
	last := tr.Task(tr.Main[2])
	// The post-join segment depends on the previous main segment and the
	// support task.
	if len(last.Deps) != 2 {
		t.Fatalf("post-join deps = %v", last.Deps)
	}
}

func TestRecorderTStoreReclassification(t *testing.T) {
	r := NewRecorder(nil)
	r.OnStore(0x40, 0, 1, false)
	r.NoteTStore()
	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Task(tr.Main[0])
	if m.Stores != 0 || m.TStores != 1 {
		t.Fatalf("tstore not reclassified: stores=%d tstores=%d", m.Stores, m.TStores)
	}
}

func TestRecorderMgmtCharge(t *testing.T) {
	r := NewRecorder(nil)
	r.NoteMgmt(4)
	tr, _ := r.Finish()
	if tr.Task(tr.Main[0]).Mgmt != 4 {
		t.Fatalf("mgmt not charged")
	}
}

func TestRecorderCacheClassification(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	r := NewRecorder(h)
	r.OnLoad(0x4000, 0) // cold: memory
	r.OnLoad(0x4000, 0) // warm: L1
	tr, _ := r.Finish()
	m := tr.Task(tr.Main[0])
	if m.Loads[mem.LevelMem] != 1 || m.Loads[mem.LevelL1] != 1 {
		t.Fatalf("load classification wrong: %v", m.Loads)
	}
}

func TestRecorderPanicsOnMisuse(t *testing.T) {
	cases := map[string]func(*Recorder){
		"nested-support":      func(r *Recorder) { r.BeginSupport("a", NoTask); r.BeginSupport("b", NoTask) },
		"end-without-begin":   func(r *Recorder) { r.EndSupport() },
		"cut-during-support":  func(r *Recorder) { r.BeginSupport("a", NoTask); r.CutMain() },
		"join-during-support": func(r *Recorder) { r.BeginSupport("a", NoTask); r.Join(nil) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f(NewRecorder(nil))
		}()
	}
}

func TestFinishRejectsOpenSupport(t *testing.T) {
	r := NewRecorder(nil)
	r.BeginSupport("open", NoTask)
	if _, err := r.Finish(); err == nil {
		t.Fatalf("Finish with open support task succeeded")
	}
}

func TestTraceValidate(t *testing.T) {
	bad := &Trace{
		Tasks: []*Task{{ID: 0, Kind: KindMain, Deps: []TaskID{1}}, {ID: 1, Kind: KindMain}},
		Main:  []TaskID{0},
	}
	if err := bad.Validate(); err == nil {
		t.Fatalf("forward dependency accepted")
	}
	empty := &Trace{Tasks: nil, Main: nil}
	if err := empty.Validate(); err == nil {
		t.Fatalf("empty main chain accepted")
	}
}

func TestTraceInstructionsSums(t *testing.T) {
	r := NewRecorder(nil)
	r.OnCompute(10)
	rel := r.CutMain()
	r.BeginSupport("s", rel)
	r.OnCompute(20)
	id := r.EndSupport()
	r.Join([]TaskID{id})
	tr, _ := r.Finish()
	if tr.Instructions() != 30 {
		t.Fatalf("Instructions = %d, want 30", tr.Instructions())
	}
}

func TestSerializePreservesWork(t *testing.T) {
	r := NewRecorder(nil)
	r.OnCompute(10)
	rel := r.CutMain()
	r.BeginSupport("s", rel)
	r.OnCompute(20)
	r.OnLoad(0x40, 0)
	id := r.EndSupport()
	r.Join([]TaskID{id})
	r.OnCompute(5)
	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	flat := tr.Serialize()
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
	if flat.Instructions() != tr.Instructions() {
		t.Fatalf("Serialize changed work: %d -> %d", tr.Instructions(), flat.Instructions())
	}
	if flat.SupportTasks() != 0 {
		t.Fatalf("Serialize left %d support tasks", flat.SupportTasks())
	}
	if len(flat.Main) != len(flat.Tasks) {
		t.Fatalf("main chain %d != tasks %d", len(flat.Main), len(flat.Tasks))
	}
	// Each task depends only on its predecessor.
	for i, task := range flat.Tasks {
		if i == 0 {
			if len(task.Deps) != 0 {
				t.Fatalf("first task has deps %v", task.Deps)
			}
			continue
		}
		if len(task.Deps) != 1 || task.Deps[0] != TaskID(i-1) {
			t.Fatalf("task %d deps = %v", i, task.Deps)
		}
	}
	// The original trace must be untouched.
	if tr.SupportTasks() != 1 {
		t.Fatalf("Serialize mutated its input")
	}
}

func TestKindString(t *testing.T) {
	if KindMain.String() != "main" || KindSupport.String() != "support" {
		t.Fatalf("kind names wrong")
	}
}
