package vm

import (
	"strings"
	"testing"

	"dtt/internal/core"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := New(assemble(t, src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestArithmeticAndPrint(t *testing.T) {
	m := run(t, `
main:
	li r1, 6
	li r2, 7
	mul r3, r1, r2
	addi r3, r3, -2
	print r3
	halt
`)
	out := m.Output()
	if len(out) != 1 || out[0] != 40 {
		t.Fatalf("output = %v, want [40]", out)
	}
}

func TestLoadStoreAndBranches(t *testing.T) {
	// Sum memory[0..9] written by a loop.
	m := run(t, `
main:
	li r1, 0        ; i
	li r2, 10       ; n
fill:
	st r1, 0(r1)    ; mem[i] = i
	addi r1, r1, 1
	blt r1, r2, fill
	li r1, 0
	li r3, 0        ; sum
sum:
	ld r4, 0(r1)
	add r3, r3, r4
	addi r1, r1, 1
	blt r1, r2, sum
	print r3
	halt
`)
	if out := m.Output(); len(out) != 1 || out[0] != 45 {
		t.Fatalf("output = %v, want [45]", out)
	}
}

func TestR0Hardwired(t *testing.T) {
	m := run(t, `
main:
	li r0, 99
	print r0
	halt
`)
	if out := m.Output(); out[0] != 0 {
		t.Fatalf("r0 = %d, want 0", out[0])
	}
}

// The canonical DTT program: a support thread maintains mem[10+i] =
// mem[i]*2 for the trigger range [0, 4). Silent tst instructions must not
// fire it.
const dttProgram = `
	.thread double dbl

main:
	li r3, 0
	li r4, 4
	tspawn double, r3, r4

	li r5, 7
	tst r5, 0(r3)    ; fires: 0 -> 7
	tst r5, 0(r3)    ; silent
	li r5, 9
	tst r5, 1(r3)    ; fires: 0 -> 9
	twait double

	ld r6, 10(r0)
	print r6         ; 14
	ld r6, 11(r0)
	print r6         ; 18
	tstatus r7, double
	print r7         ; 0 = idle after twait
	halt

dbl:                     ; r1 = trigger index, r2 = value
	add r8, r2, r2
	addi r9, r1, 10
	st r8, 0(r9)
	tret
`

func TestDTTInstructions(t *testing.T) {
	m := run(t, dttProgram)
	out := m.Output()
	want := []int64{14, 18, StatusIdle}
	if len(out) != len(want) {
		t.Fatalf("output = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	s := m.Stats()
	if s.TStores != 3 || s.Silent != 1 {
		t.Fatalf("stats = %+v, want 3 tstores with 1 silent", s)
	}
	if s.Executed+s.InlineRuns != 2 {
		t.Fatalf("support instances = %d, want 2", s.Executed+s.InlineRuns)
	}
}

func TestDTTOnImmediateBackend(t *testing.T) {
	rt, err := core.New(core.Config{Backend: core.BackendImmediate, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	m, err := New(assemble(t, dttProgram), Config{Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 3 || out[0] != 14 || out[1] != 18 {
		t.Fatalf("output = %v", out)
	}
}

func TestTcancelStopsTriggers(t *testing.T) {
	m := run(t, `
	.thread bump body
main:
	li r3, 0
	li r4, 1
	tspawn bump, r3, r4
	li r5, 1
	tst r5, 0(r3)
	tbarrier
	tcancel bump
	li r5, 2
	tst r5, 0(r3)    ; no longer attached
	tbarrier
	ld r6, 5(r0)
	print r6         ; only the first trigger bumped
	halt
body:
	ld r8, 5(r0)
	addi r8, r8, 1
	st r8, 5(r0)
	tret
`)
	if out := m.Output(); out[0] != 1 {
		t.Fatalf("counter = %d, want 1 (tcancel must stop triggers)", out[0])
	}
}

func TestCascadeBetweenThreads(t *testing.T) {
	m := run(t, `
	.thread first f
	.thread second s
main:
	li r3, 0
	li r4, 1
	tspawn first, r3, r4
	li r3, 1
	li r4, 2
	tspawn second, r3, r4
	li r5, 5
	tst r5, 0(r0)
	tbarrier
	ld r6, 2(r0)
	print r6         ; (5*10)+1 = 51
	halt
f:
	li r9, 10
	mul r8, r2, r9
	tst r8, 1(r0)    ; cascades into second
	tret
s:
	addi r8, r2, 1
	st r8, 2(r0)
	tret
`)
	if out := m.Output(); out[0] != 51 {
		t.Fatalf("cascade result = %d, want 51", out[0])
	}
}

// TestDTTExecutesFewerInstructions is the ISA-level form of the paper's
// committed-instruction claim: a baseline that recomputes a derived value
// every round executes strictly more VM instructions than a DTT program
// whose silent triggering stores skip the recomputation.
func TestDTTExecutesFewerInstructions(t *testing.T) {
	baseline := `
main:
	li r10, 0
round:
	li r5, 7
	st r5, 0(r0)     ; same input every round
	ld r5, 0(r0)     ; recompute derived = input*input, every round
	mul r6, r5, r5
	st r6, 1(r0)
	addi r10, r10, 1
	li r9, 20
	blt r10, r9, round
	ld r6, 1(r0)
	print r6
	halt
`
	dttProg := `
	.thread dv body
main:
	li r3, 0
	li r4, 1
	tspawn dv, r3, r4
	li r10, 0
round:
	li r5, 7
	tst r5, 0(r0)    ; silent after the first round
	twait dv
	addi r10, r10, 1
	li r9, 20
	blt r10, r9, round
	ld r6, 1(r0)
	print r6
	halt
body:
	mul r6, r2, r2
	st r6, 1(r0)
	tret
`
	mb, err := New(assemble(t, baseline), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	if err := mb.Run(); err != nil {
		t.Fatal(err)
	}
	md, err := New(assemble(t, dttProg), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	if err := md.Run(); err != nil {
		t.Fatal(err)
	}
	if mb.Output()[0] != md.Output()[0] || mb.Output()[0] != 49 {
		t.Fatalf("outputs differ: %v vs %v", mb.Output(), md.Output())
	}
	if !(md.FuelUsed() < mb.FuelUsed()) {
		t.Fatalf("DTT executed %d instructions vs baseline %d; nothing skipped", md.FuelUsed(), mb.FuelUsed())
	}
	if s := md.Stats(); s.Silent != 19 {
		t.Fatalf("silent tstores = %d, want 19 of 20", s.Silent)
	}
}

func TestFuelExhaustion(t *testing.T) {
	m, err := New(assemble(t, "main:\n jmp main\n"), Config{Fuel: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "fuel") {
		t.Fatalf("runaway loop not stopped: %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"oob-load":          "main:\n li r1, 9999999\n ld r2, 0(r1)\n halt\n",
		"halt-in-thread":    "\t.thread t b\nmain:\n li r3,0\n li r4,1\n tspawn t, r3, r4\n li r5,1\n tst r5, 0(r0)\n tbarrier\n halt\nb:\n halt\n",
		"tret-in-main":      "main:\n tret\n",
		"twait-in-thread":   "\t.thread t b\nmain:\n li r3,0\n li r4,1\n tspawn t, r3, r4\n li r5,1\n tst r5, 0(r0)\n tbarrier\n halt\nb:\n twait t\n tret\n",
		"tspawn-undeclared": "main:\n tspawn nope, r1, r2\n halt\n",
		"pc-off-end":        "main:\n nop\n",
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			m, err := New(assemble(t, src), Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if err := m.Run(); err == nil {
				t.Fatalf("expected runtime error")
			}
		})
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "  \n ; just a comment\n",
		"bad-mnemonic":    "main:\n frobnicate r1\n",
		"bad-register":    "main:\n li r99, 1\n halt\n",
		"bad-immediate":   "main:\n li r1, banana\n halt\n",
		"bad-operands":    "main:\n add r1, r2\n halt\n",
		"undefined-label": "main:\n jmp nowhere\n halt\n",
		"dup-label":       "a:\n nop\na:\n halt\n",
		"bad-thread":      ".thread t\nmain:\n halt\n",
		"thread-no-entry": ".thread t nowhere\nmain:\n halt\n",
		"dup-thread":      ".thread t main\n.thread t main\nmain:\n halt\n",
		"bad-mem-operand": "main:\n ld r1, r2\n halt\n",
		"bad-label":       "a b:\n halt\n",
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			if _, err := Assemble(src); err == nil {
				t.Fatalf("assembled invalid program")
			}
		})
	}
}

func TestAssemblerDetails(t *testing.T) {
	p := assemble(t, `
; leading comment
start: main: li r1, 0x10   ; two labels, hex immediate
	print r1
	halt
`)
	if p.Entry != 0 {
		t.Fatalf("entry = %d", p.Entry)
	}
	if p.Instrs[0].Imm != 16 {
		t.Fatalf("hex immediate = %d", p.Instrs[0].Imm)
	}
}

func TestNewRejectsEmptyProgram(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatalf("nil program accepted")
	}
	if _, err := New(&Program{}, Config{}); err == nil {
		t.Fatalf("empty program accepted")
	}
}
