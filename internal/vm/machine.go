package vm

import (
	"fmt"
	"sync"

	"dtt/internal/core"
	"dtt/internal/queue"
)

// Machine executes an assembled Program against a DTT runtime. Its memory
// is a single core.Region of words addressed by index; tst instructions
// are real triggering stores, and .thread bodies run as real support
// threads — on worker goroutines when the runtime uses the immediate
// backend.
type Machine struct {
	rt      *core.Runtime
	ownRT   bool
	mem     *core.Region
	prog    *Program
	threads map[string]core.ThreadID

	mu   sync.Mutex
	out  []int64
	fail error

	// fuel bounds total executed instructions across the main program and
	// all support-thread bodies, so a buggy program terminates.
	fuel   int64
	budget int64
}

// Config configures a Machine.
type Config struct {
	// MemWords is the memory size; defaults to 4096.
	MemWords int
	// Fuel bounds total executed instructions; defaults to 1<<20.
	Fuel int64
	// Runtime supplies an existing runtime; when nil the machine creates
	// a deferred-backend runtime and owns its lifecycle.
	Runtime *core.Runtime
}

// New assembles nothing — pass a Program from Assemble. It registers the
// program's threads with the runtime and attaches nothing yet: attachment
// is the program's job, via tspawn.
func New(prog *Program, cfg Config) (*Machine, error) {
	if prog == nil || len(prog.Instrs) == 0 {
		return nil, fmt.Errorf("vm: empty program")
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = 4096
	}
	if cfg.Fuel <= 0 {
		cfg.Fuel = 1 << 20
	}
	m := &Machine{prog: prog, budget: cfg.Fuel, threads: map[string]core.ThreadID{}}
	if cfg.Runtime != nil {
		m.rt = cfg.Runtime
	} else {
		rt, err := core.New(core.Config{Backend: core.BackendDeferred})
		if err != nil {
			return nil, err
		}
		m.rt = rt
		m.ownRT = true
	}
	m.mem = m.rt.NewRegion("vm.mem", cfg.MemWords)
	for _, td := range prog.Threads {
		td := td
		id := m.rt.Register("vm."+td.Name, func(tg core.Trigger) {
			m.runBody(td.Entry, tg)
		})
		m.threads[td.Name] = id
	}
	return m, nil
}

// Close releases the runtime if the machine owns it.
func (m *Machine) Close() {
	if m.ownRT {
		m.rt.Close()
	}
}

// Output returns the values printed so far, in print order.
func (m *Machine) Output() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, len(m.out))
	copy(out, m.out)
	return out
}

// Stats returns the underlying runtime's trigger statistics.
func (m *Machine) Stats() core.Stats { return m.rt.Stats() }

// FuelUsed returns the number of VM instructions executed so far, across
// the main program and all support-thread bodies — the machine's committed
// dynamic instruction count.
func (m *Machine) FuelUsed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fuel
}

// Mem returns the machine's memory region, for test setup and inspection.
func (m *Machine) Mem() *core.Region { return m.mem }

// Run executes the main program from its entry to halt. It returns the
// first error raised anywhere, including inside support-thread bodies.
func (m *Machine) Run() error {
	var regs [NumRegs]int64
	if err := m.exec(m.prog.Entry, &regs, false, core.Trigger{}); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fail
}

func (m *Machine) setFail(err error) {
	m.mu.Lock()
	if m.fail == nil {
		m.fail = err
	}
	m.mu.Unlock()
}

// runBody executes a support-thread body with a fresh register file.
// r1 holds the trigger's word index, r2 the triggering value.
func (m *Machine) runBody(entry int, tg core.Trigger) {
	var regs [NumRegs]int64
	regs[1] = int64(tg.Index)
	regs[2] = int64(tg.Region.Load(tg.Index))
	if err := m.exec(entry, &regs, true, tg); err != nil {
		m.setFail(err)
	}
}

// spendFuel decrements the shared fuel counter.
func (m *Machine) spendFuel(pc int) error {
	m.mu.Lock()
	m.fuel++
	over := m.fuel > m.budget
	m.mu.Unlock()
	if over {
		return fmt.Errorf("vm: fuel exhausted at pc %d (runaway program?)", pc)
	}
	return nil
}

// exec is the interpreter loop. inThread selects the legal terminator
// (tret vs halt) and forbids synchronisation instructions inside bodies.
func (m *Machine) exec(pc int, regs *[NumRegs]int64, inThread bool, _ core.Trigger) error {
	for {
		if pc < 0 || pc >= len(m.prog.Instrs) {
			return fmt.Errorf("vm: pc %d out of program", pc)
		}
		if err := m.spendFuel(pc); err != nil {
			return err
		}
		ins := m.prog.Instrs[pc]
		regs[0] = 0
		switch ins.Op {
		case OpNop:
		case OpLi:
			regs[ins.Rd] = ins.Imm
		case OpAdd:
			regs[ins.Rd] = regs[ins.Rs] + regs[ins.Rt]
		case OpSub:
			regs[ins.Rd] = regs[ins.Rs] - regs[ins.Rt]
		case OpMul:
			regs[ins.Rd] = regs[ins.Rs] * regs[ins.Rt]
		case OpAddi:
			regs[ins.Rd] = regs[ins.Rs] + ins.Imm
		case OpSlt:
			if regs[ins.Rs] < regs[ins.Rt] {
				regs[ins.Rd] = 1
			} else {
				regs[ins.Rd] = 0
			}
		case OpAnd:
			regs[ins.Rd] = regs[ins.Rs] & regs[ins.Rt]
		case OpOr:
			regs[ins.Rd] = regs[ins.Rs] | regs[ins.Rt]
		case OpXor:
			regs[ins.Rd] = regs[ins.Rs] ^ regs[ins.Rt]
		case OpShl:
			regs[ins.Rd] = regs[ins.Rs] << (uint64(regs[ins.Rt]) & 63)
		case OpShr:
			regs[ins.Rd] = int64(uint64(regs[ins.Rs]) >> (uint64(regs[ins.Rt]) & 63))
		case OpDiv:
			if regs[ins.Rt] == 0 {
				regs[ins.Rd] = 0
			} else {
				regs[ins.Rd] = regs[ins.Rs] / regs[ins.Rt]
			}
		case OpMod:
			if regs[ins.Rt] == 0 {
				regs[ins.Rd] = 0
			} else {
				regs[ins.Rd] = regs[ins.Rs] % regs[ins.Rt]
			}
		case OpLd:
			idx, err := m.addr(ins, regs)
			if err != nil {
				return err
			}
			regs[ins.Rd] = int64(m.mem.Load(idx))
		case OpSt:
			idx, err := m.addr(ins, regs)
			if err != nil {
				return err
			}
			// st is the ISA's non-triggering store by definition (tst is the
			// triggering form), and guest support-thread code also executes
			// through this interpreter loop.
			m.mem.Store(idx, uint64(regs[ins.Rd])) //dtt:ignore untriggered-write -- st is defined as non-triggering; the guest chooses st vs tst
		case OpTst:
			idx, err := m.addr(ins, regs)
			if err != nil {
				return err
			}
			m.mem.TStore(idx, uint64(regs[ins.Rd]))
		case OpBeq:
			if regs[ins.Rs] == regs[ins.Rt] {
				pc = ins.Target
				continue
			}
		case OpBne:
			if regs[ins.Rs] != regs[ins.Rt] {
				pc = ins.Target
				continue
			}
		case OpBlt:
			if regs[ins.Rs] < regs[ins.Rt] {
				pc = ins.Target
				continue
			}
		case OpJmp:
			pc = ins.Target
			continue
		case OpTspawn:
			id, ok := m.threads[ins.Sym]
			if !ok {
				return fmt.Errorf("vm: line %d: tspawn of undeclared thread %q", ins.Line, ins.Sym)
			}
			lo, hi := int(regs[ins.Rs]), int(regs[ins.Rt])
			if err := m.rt.Attach(id, m.mem, lo, hi); err != nil {
				return fmt.Errorf("vm: line %d: %w", ins.Line, err)
			}
		case OpTcancel:
			id, ok := m.threads[ins.Sym]
			if !ok {
				return fmt.Errorf("vm: line %d: tcancel of undeclared thread %q", ins.Line, ins.Sym)
			}
			m.rt.Cancel(id)
		case OpTwait:
			if inThread {
				return fmt.Errorf("vm: line %d: twait inside a thread body", ins.Line)
			}
			id, ok := m.threads[ins.Sym]
			if !ok {
				return fmt.Errorf("vm: line %d: twait of undeclared thread %q", ins.Line, ins.Sym)
			}
			m.rt.Wait(id)
		case OpTbarrier:
			if inThread {
				return fmt.Errorf("vm: line %d: tbarrier inside a thread body", ins.Line)
			}
			m.rt.Barrier()
		case OpTstatus:
			id, ok := m.threads[ins.Sym]
			if !ok {
				return fmt.Errorf("vm: line %d: tstatus of undeclared thread %q", ins.Line, ins.Sym)
			}
			regs[ins.Rd] = int64(m.rt.Status(id))
		case OpPrint:
			m.mu.Lock()
			m.out = append(m.out, regs[ins.Rs])
			m.mu.Unlock()
		case OpTret:
			if !inThread {
				return fmt.Errorf("vm: line %d: tret outside a thread body", ins.Line)
			}
			return nil
		case OpHalt:
			if inThread {
				return fmt.Errorf("vm: line %d: halt inside a thread body", ins.Line)
			}
			return nil
		default:
			return fmt.Errorf("vm: line %d: unimplemented opcode %d", ins.Line, ins.Op)
		}
		pc++
	}
}

func (m *Machine) addr(ins Instr, regs *[NumRegs]int64) (int, error) {
	idx := regs[ins.Rs] + ins.Imm
	if idx < 0 || idx >= int64(m.mem.Len()) {
		return 0, fmt.Errorf("vm: line %d: memory index %d out of [0, %d)", ins.Line, idx, m.mem.Len())
	}
	return int(idx), nil
}

// Status values returned by tstatus, mirroring the TQST encoding.
const (
	StatusIdle    = int64(queue.StatusIdle)
	StatusPending = int64(queue.StatusPending)
	StatusRunning = int64(queue.StatusRunning)
)
