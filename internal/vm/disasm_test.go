package vm

import (
	"strings"
	"testing"
)

func TestNewALUOps(t *testing.T) {
	m := run(t, `
main:
	li r1, 12
	li r2, 5
	and r3, r1, r2
	print r3        ; 4
	or r3, r1, r2
	print r3        ; 13
	xor r3, r1, r2
	print r3        ; 9
	li r2, 2
	shl r3, r1, r2
	print r3        ; 48
	shr r3, r1, r2
	print r3        ; 3
	div r3, r1, r2
	print r3        ; 6
	mod r3, r1, r2
	print r3        ; 0
	li r2, 0
	div r3, r1, r2
	print r3        ; 0 (division by zero yields 0, not a trap)
	mod r3, r1, r2
	print r3        ; 0
	halt
`)
	want := []int64{4, 13, 9, 48, 3, 6, 0, 0, 0}
	got := m.Output()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	// Every instruction's disassembly (with @targets replaced by labels)
	// must reassemble; here we check the rendering covers the whole set
	// and is stable.
	src := `
	.thread t body
main:
	nop
	li r1, 5
	add r2, r1, r1
	sub r2, r2, r1
	mul r2, r2, r1
	slt r3, r1, r2
	and r3, r1, r2
	or r3, r1, r2
	xor r3, r1, r2
	shl r3, r1, r2
	shr r3, r1, r2
	div r3, r1, r2
	mod r3, r1, r2
	addi r1, r1, -1
	ld r4, 8(r1)
	st r4, 8(r1)
	tst r4, 8(r1)
	beq r1, r2, main
	bne r1, r2, main
	blt r1, r2, main
	jmp end
	tspawn t, r1, r2
	tcancel t
	twait t
	tbarrier
	tstatus r5, t
	print r5
end:
	halt
body:
	tret
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, frag := range []string{
		"nop", "li r1, 5", "add r2, r1, r1", "sub r2", "mul r2", "slt r3",
		"and r3", "or r3", "xor r3", "shl r3", "shr r3", "div r3", "mod r3",
		"addi r1, r1, -1", "ld r4, 8(r1)", "st r4, 8(r1)", "tst r4, 8(r1)",
		"beq r1, r2, @0", "jmp @", "tspawn t, r1, r2", "tcancel t",
		"twait t", "tbarrier", "tstatus r5, t", "print r5", "halt", "tret",
		".thread t @",
	} {
		if !strings.Contains(dis, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, dis)
		}
	}
	// The entry marker points at main (index 0 here).
	if !strings.Contains(dis, "=>    0") {
		t.Errorf("entry marker missing:\n%s", dis)
	}
}

func TestAssemblerDoesNotPanicOnGarbage(t *testing.T) {
	inputs := []string{
		"",
		":::",
		"li",
		"li r1",
		"li r1,",
		"ld r1, (",
		"ld r1, 5(r1",
		"tspawn",
		".thread",
		"\x00\x01\x02",
		strings.Repeat("a:", 100),
		"main: li r1, 99999999999999999999999999",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Assemble(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Assemble(src)
		}()
	}
}
