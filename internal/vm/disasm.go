package vm

import (
	"fmt"
	"strings"
)

// String renders one instruction in assembler syntax. Branch targets print
// as absolute instruction indexes (labels are not preserved through
// assembly).
func (i Instr) String() string {
	r := func(n int) string { return fmt.Sprintf("r%d", n) }
	switch i.Op {
	case OpNop:
		return "nop"
	case OpHalt:
		return "halt"
	case OpTret:
		return "tret"
	case OpTbarrier:
		return "tbarrier"
	case OpLi:
		return fmt.Sprintf("li %s, %d", r(i.Rd), i.Imm)
	case OpAdd, OpSub, OpMul, OpSlt, OpAnd, OpOr, OpXor, OpShl, OpShr, OpDiv, OpMod:
		return fmt.Sprintf("%s %s, %s, %s", mnemonicOf(i.Op), r(i.Rd), r(i.Rs), r(i.Rt))
	case OpAddi:
		return fmt.Sprintf("addi %s, %s, %d", r(i.Rd), r(i.Rs), i.Imm)
	case OpLd:
		return fmt.Sprintf("ld %s, %d(%s)", r(i.Rd), i.Imm, r(i.Rs))
	case OpSt:
		return fmt.Sprintf("st %s, %d(%s)", r(i.Rd), i.Imm, r(i.Rs))
	case OpTst:
		return fmt.Sprintf("tst %s, %d(%s)", r(i.Rd), i.Imm, r(i.Rs))
	case OpBeq, OpBne, OpBlt:
		return fmt.Sprintf("%s %s, %s, @%d", mnemonicOf(i.Op), r(i.Rs), r(i.Rt), i.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", i.Target)
	case OpTspawn:
		return fmt.Sprintf("tspawn %s, %s, %s", i.Sym, r(i.Rs), r(i.Rt))
	case OpTcancel:
		return fmt.Sprintf("tcancel %s", i.Sym)
	case OpTwait:
		return fmt.Sprintf("twait %s", i.Sym)
	case OpTstatus:
		return fmt.Sprintf("tstatus %s, %s", r(i.Rd), i.Sym)
	case OpPrint:
		return fmt.Sprintf("print %s", r(i.Rs))
	}
	return fmt.Sprintf("op(%d)", int(i.Op))
}

func mnemonicOf(op Op) string {
	switch op {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpSlt:
		return "slt"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpShl:
		return "shl"
	case OpShr:
		return "shr"
	case OpDiv:
		return "div"
	case OpMod:
		return "mod"
	case OpBeq:
		return "beq"
	case OpBne:
		return "bne"
	case OpBlt:
		return "blt"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Disassemble renders the whole program, one instruction per line with its
// index, plus the thread directory.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, td := range p.Threads {
		fmt.Fprintf(&b, ".thread %s @%d\n", td.Name, td.Entry)
	}
	for i, ins := range p.Instrs {
		marker := "  "
		if i == p.Entry {
			marker = "=>"
		}
		fmt.Fprintf(&b, "%s %4d  %s\n", marker, i, ins.String())
	}
	return b.String()
}
