// Package vm is a small word-addressed virtual machine whose instruction
// set includes the paper's DTT extensions. The rest of the repository
// exposes data-triggered threads as a Go API; this package demonstrates
// them at the level the paper proposes them — as instructions. Programs
// are written in a tiny assembly dialect, assembled to an instruction
// slice, and executed against a core.Runtime: a tst instruction is a real
// triggering store, tspawn fills the real thread registry, and support
// threads are assembly subroutines executed by the runtime.
package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a VM opcode.
type Op int

// The instruction set. The DTT extension opcodes mirror internal/isa.
const (
	OpNop     Op = iota
	OpLi         // li rd, imm
	OpAdd        // add rd, rs, rt
	OpSub        // sub rd, rs, rt
	OpMul        // mul rd, rs, rt
	OpAddi       // addi rd, rs, imm
	OpSlt        // slt rd, rs, rt (rd = rs < rt)
	OpAnd        // and rd, rs, rt
	OpOr         // or rd, rs, rt
	OpXor        // xor rd, rs, rt
	OpShl        // shl rd, rs, rt (shift amount masked to 63)
	OpShr        // shr rd, rs, rt (logical)
	OpDiv        // div rd, rs, rt (0 when rt is 0)
	OpMod        // mod rd, rs, rt (0 when rt is 0)
	OpLd         // ld rd, imm(rs)
	OpSt         // st rs, imm(rb)
	OpTst        // tst rs, imm(rb) — triggering store
	OpBeq        // beq rs, rt, label
	OpBne        // bne rs, rt, label
	OpBlt        // blt rs, rt, label
	OpJmp        // jmp label
	OpTspawn     // tspawn thread, rlo, rhi
	OpTcancel    // tcancel thread
	OpTwait      // twait thread
	OpTbarrier
	OpTstatus // tstatus rd, thread
	OpPrint   // print rs — appends to the machine's output
	OpTret    // return from a support-thread body
	OpHalt
)

// Instr is one decoded instruction.
type Instr struct {
	Op         Op
	Rd, Rs, Rt int
	Imm        int64
	Target     int    // resolved branch/jump target
	Sym        string // thread name for DTT instructions
	Line       int    // source line, for diagnostics
}

// ThreadDecl is a .thread directive: a named support thread whose body
// starts at Entry and runs until tret.
type ThreadDecl struct {
	Name  string
	Entry int
}

// Program is an assembled program.
type Program struct {
	Instrs  []Instr
	Entry   int // index of label "main", or 0
	Threads []ThreadDecl
}

// NumRegs is the register file size; r0 is hardwired to zero.
const NumRegs = 16

type asmError struct {
	line int
	msg  string
}

func (e asmError) Error() string { return fmt.Sprintf("vm: line %d: %s", e.line, e.msg) }

func errf(line int, format string, args ...any) error {
	return asmError{line: line, msg: fmt.Sprintf(format, args...)}
}

// Assemble parses src into a Program. The dialect:
//
//	; comment
//	label:
//	.thread name entrylabel
//	li r1, 42
//	ld r2, 4(r1)
//	tst r2, 0(r3)
//	tspawn name, r4, r5
//	beq r1, r2, label
//
// Registers are r0..r15. Immediates are decimal or 0x-hex.
func Assemble(src string) (*Program, error) {
	type pendingThread struct {
		name, entry string
		line        int
	}
	var (
		prog     Program
		labels   = map[string]int{}
		fixups   []int // instruction indexes whose Sym is an unresolved label
		pthreads []pendingThread
	)

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := ln + 1
		text := raw
		if i := strings.IndexByte(text, ';'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Labels may share a line with an instruction: "loop: addi ..."
		for {
			i := strings.IndexByte(text, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(text[:i])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, errf(line, "malformed label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, errf(line, "duplicate label %q", label)
			}
			labels[label] = len(prog.Instrs)
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".thread") {
			fields := strings.Fields(text)
			if len(fields) != 3 {
				return nil, errf(line, ".thread wants: .thread name entrylabel")
			}
			pthreads = append(pthreads, pendingThread{name: fields[1], entry: fields[2], line: line})
			continue
		}

		ins, needsFixup, err := parseInstr(text, line)
		if err != nil {
			return nil, err
		}
		if needsFixup {
			fixups = append(fixups, len(prog.Instrs))
		}
		prog.Instrs = append(prog.Instrs, ins)
	}

	// Resolve branch targets.
	for _, idx := range fixups {
		ins := &prog.Instrs[idx]
		t, ok := labels[ins.Sym]
		if !ok {
			return nil, errf(ins.Line, "undefined label %q", ins.Sym)
		}
		ins.Target = t
		ins.Sym = ""
	}
	// Resolve thread entries.
	seen := map[string]bool{}
	for _, pt := range pthreads {
		if seen[pt.name] {
			return nil, errf(pt.line, "duplicate thread %q", pt.name)
		}
		seen[pt.name] = true
		entry, ok := labels[pt.entry]
		if !ok {
			return nil, errf(pt.line, "thread %q: undefined entry label %q", pt.name, pt.entry)
		}
		prog.Threads = append(prog.Threads, ThreadDecl{Name: pt.name, Entry: entry})
	}
	if e, ok := labels["main"]; ok {
		prog.Entry = e
	}
	if len(prog.Instrs) == 0 {
		return nil, errf(0, "empty program")
	}
	return &prog, nil
}

// parseInstr decodes one instruction line. needsFixup reports that Sym
// holds a label to resolve into Target.
func parseInstr(text string, line int) (ins Instr, needsFixup bool, err error) {
	ins.Line = line
	sp := strings.IndexAny(text, " \t")
	mnem := text
	rest := ""
	if sp >= 0 {
		mnem, rest = text[:sp], strings.TrimSpace(text[sp+1:])
	}
	args := splitArgs(rest)
	argc := func(n int) error {
		if len(args) != n {
			return errf(line, "%s wants %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	switch mnem {
	case "nop":
		ins.Op = OpNop
		err = argc(0)
	case "halt":
		ins.Op = OpHalt
		err = argc(0)
	case "tret":
		ins.Op = OpTret
		err = argc(0)
	case "tbarrier":
		ins.Op = OpTbarrier
		err = argc(0)
	case "li":
		ins.Op = OpLi
		if err = argc(2); err == nil {
			ins.Rd, err = reg(args[0], line)
			if err == nil {
				ins.Imm, err = imm(args[1], line)
			}
		}
	case "add", "sub", "mul", "slt", "and", "or", "xor", "shl", "shr", "div", "mod":
		switch mnem {
		case "add":
			ins.Op = OpAdd
		case "sub":
			ins.Op = OpSub
		case "mul":
			ins.Op = OpMul
		case "slt":
			ins.Op = OpSlt
		case "and":
			ins.Op = OpAnd
		case "or":
			ins.Op = OpOr
		case "xor":
			ins.Op = OpXor
		case "shl":
			ins.Op = OpShl
		case "shr":
			ins.Op = OpShr
		case "div":
			ins.Op = OpDiv
		case "mod":
			ins.Op = OpMod
		}
		if err = argc(3); err == nil {
			ins.Rd, err = reg(args[0], line)
			if err == nil {
				ins.Rs, err = reg(args[1], line)
			}
			if err == nil {
				ins.Rt, err = reg(args[2], line)
			}
		}
	case "addi":
		ins.Op = OpAddi
		if err = argc(3); err == nil {
			ins.Rd, err = reg(args[0], line)
			if err == nil {
				ins.Rs, err = reg(args[1], line)
			}
			if err == nil {
				ins.Imm, err = imm(args[2], line)
			}
		}
	case "ld", "st", "tst":
		switch mnem {
		case "ld":
			ins.Op = OpLd
		case "st":
			ins.Op = OpSt
		default:
			ins.Op = OpTst
		}
		if err = argc(2); err == nil {
			ins.Rd, err = reg(args[0], line) // data register (dest for ld, src for st/tst)
			if err == nil {
				ins.Imm, ins.Rs, err = memOperand(args[1], line)
			}
		}
	case "beq", "bne", "blt":
		switch mnem {
		case "beq":
			ins.Op = OpBeq
		case "bne":
			ins.Op = OpBne
		default:
			ins.Op = OpBlt
		}
		if err = argc(3); err == nil {
			ins.Rs, err = reg(args[0], line)
			if err == nil {
				ins.Rt, err = reg(args[1], line)
			}
			ins.Sym = args[2]
			needsFixup = true
		}
	case "jmp":
		ins.Op = OpJmp
		if err = argc(1); err == nil {
			ins.Sym = args[0]
			needsFixup = true
		}
	case "tspawn":
		ins.Op = OpTspawn
		if err = argc(3); err == nil {
			ins.Sym = args[0]
			ins.Rs, err = reg(args[1], line)
			if err == nil {
				ins.Rt, err = reg(args[2], line)
			}
		}
	case "tcancel", "twait":
		if mnem == "tcancel" {
			ins.Op = OpTcancel
		} else {
			ins.Op = OpTwait
		}
		if err = argc(1); err == nil {
			ins.Sym = args[0]
		}
	case "tstatus":
		ins.Op = OpTstatus
		if err = argc(2); err == nil {
			ins.Rd, err = reg(args[0], line)
			ins.Sym = args[1]
		}
	case "print":
		ins.Op = OpPrint
		if err = argc(1); err == nil {
			ins.Rs, err = reg(args[0], line)
		}
	default:
		err = errf(line, "unknown mnemonic %q", mnem)
	}
	return ins, needsFixup, err
}

func splitArgs(rest string) []string {
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func reg(s string, line int) (int, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, errf(line, "expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, errf(line, "bad register %q", s)
	}
	return n, nil
}

func imm(s string, line int) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, errf(line, "bad immediate %q", s)
	}
	return v, nil
}

// memOperand parses "imm(rN)" or "(rN)".
func memOperand(s string, line int) (off int64, base int, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "expected imm(reg) operand, got %q", s)
	}
	if open > 0 {
		off, err = imm(s[:open], line)
		if err != nil {
			return 0, 0, err
		}
	}
	base, err = reg(s[open+1:len(s)-1], line)
	return off, base, err
}
