package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// mesaWorkload models 177.mesa's vertex pipeline.
//
// mesa retransforms every vertex of the scene each frame, but in the SPEC
// input most geometry is static frame to frame. The kernel stores packed
// vertex coordinates through triggering stores; a support thread
// retransforms only the vertices that moved, while the per-frame raster
// pass over transformed coordinates stays on the main thread in both
// variants.
type mesaWorkload struct{}

func init() { register(mesaWorkload{}) }

func (mesaWorkload) Name() string  { return "mesa" }
func (mesaWorkload) Suite() string { return "SPEC CPU2000 fp (177.mesa)" }
func (mesaWorkload) Description() string {
	return "vertex transforms: retransform only vertices that moved between frames"
}

// mesa dimensions.
const (
	mesaVertsBase     = 1536
	mesaTransformCost = 10 // ALU ops per vertex transform
	mesaRasterCost    = 2  // ALU ops per vertex in the raster pass
	mesaMoveFrac      = 2  // 1/frac of the vertices move per frame
)

type mesaState struct {
	sys    *mem.System
	verts  int
	pos    *mem.Buffer // packed model-space coordinates
	screen *mem.Buffer // packed transformed coordinates
	m      [4]int64    // the (static) transform matrix
}

// transform retransforms vertex v: a 2x2 integer matrix multiply plus
// perspective-flavoured shift, standing in for mesa's 4x4 pipeline.
func (st *mesaState) transform(v int) {
	x, y := unpackXY(st.pos.Load(v))
	sx := (st.m[0]*int64(x) + st.m[1]*int64(y)) >> 8
	sy := (st.m[2]*int64(x) + st.m[3]*int64(y)) >> 8
	st.sys.Compute(mesaTransformCost)
	st.screen.Store(v, packXY(int(sx&0xfffff), int(sy&0xfffff)))
}

// raster is the main-thread consumption pass: accumulate a scene statistic
// over the transformed coordinates.
func (st *mesaState) raster() int64 {
	var acc int64
	for v := 0; v < st.verts; v++ {
		x, y := unpackXY(st.screen.Load(v))
		acc += int64(x ^ y)
		st.sys.Compute(mesaRasterCost)
	}
	return acc
}

// framePosition returns vertex v's position in a frame; most vertices keep
// their previous position.
func mesaFramePosition(st *mesaState, frame, v int) mem.Word {
	h := uint64(frame)*0xbf58476d1ce4e5b9 + uint64(v)*0x9e3779b97f4a7c15
	h ^= h >> 30
	if h%mesaMoveFrac != 0 {
		return st.pos.Load(v)
	}
	x, y := unpackXY(st.pos.Load(v))
	x = (x + int(h>>33)%9 - 4 + 1<<20) % (1 << 20)
	y = (y + int(h>>47)%9 - 4 + 1<<20) % (1 << 20)
	return packXY(x, y)
}

func newMesaState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *mesaState {
	size = size.withDefaults()
	st := &mesaState{sys: sys, verts: mesaVertsBase * size.Scale}
	st.pos = alloc("mesa.pos", st.verts)
	st.screen = alloc("mesa.screen", st.verts)
	rng := NewRNG(size.Seed ^ 0x3e5)
	st.m = [4]int64{int64(rng.Intn(512) + 1), int64(rng.Intn(512)), int64(rng.Intn(512)), int64(rng.Intn(512) + 1)}
	for v := 0; v < st.verts; v++ {
		st.pos.Poke(v, packXY(rng.Intn(1<<16), rng.Intn(1<<16)))
	}
	for v := 0; v < st.verts; v++ {
		st.transform(v)
	}
	return st
}

func mesaChecksum(sum uint64, st *mesaState) uint64 {
	for v := 0; v < st.verts; v++ {
		sum = checksum(sum, uint64(st.screen.Peek(v)))
		sum = checksum(sum, uint64(st.pos.Peek(v)))
	}
	return sum
}

func (mesaWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newMesaState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for frame := 0; frame < size.Iters; frame++ {
		for v := 0; v < st.verts; v++ {
			st.pos.Store(v, mesaFramePosition(st, frame, v))
		}
		// Retransform every vertex, moved or not.
		for v := 0; v < st.verts; v++ {
			st.transform(v)
		}
		sum = checksum(sum, uint64(st.raster()))
	}
	return Result{Checksum: mesaChecksum(sum, st)}, nil
}

func (mesaWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("mesa: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var posRegion *core.Region
	st := newMesaState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "mesa.pos" {
			posRegion = rt.NewRegion(name, n)
			return posRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	xform := rt.Register("mesa.transform", func(tg core.Trigger) {
		st.transform(tg.Index)
	})
	if err := rt.Attach(xform, posRegion, 0, st.verts); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for frame := 0; frame < size.Iters; frame++ {
		for v := 0; v < st.verts; v++ {
			posRegion.TStore(v, mesaFramePosition(st, frame, v))
		}
		rt.Wait(xform)
		sum = checksum(sum, uint64(st.raster()))
	}
	rt.Barrier()
	return Result{Checksum: mesaChecksum(sum, st), Triggers: st.verts}, nil
}
