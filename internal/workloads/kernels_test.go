package workloads

// Focused tests of each kernel's internal invariants, beyond the shared
// baseline/DTT equivalence property.

import (
	"testing"

	"dtt/internal/mem"
)

func testSize() Size { return Size{Scale: 1, Iters: 6, Seed: 11} }

// --- mcf ---

// TestMCFAffectedSetComplete verifies the support thread's affected-set
// logic: after changing one potential and refreshing only the affected
// tails, every nodeMin must equal a from-scratch recomputation.
func TestMCFAffectedSetComplete(t *testing.T) {
	sys := mem.NewSystem()
	net := buildMCFNet(testSize())
	st := &mcfState{sys: sys, net: net,
		pot:     sys.Alloc("pot", net.nodes),
		nodeMin: sys.Alloc("min", net.nodes)}
	seedPotentials(st.pot, 11)
	for n := 0; n < net.nodes; n++ {
		st.recomputeNodeMin(n)
	}

	// Change one potential and apply the support thread's refresh rule.
	victim := 37
	st.pot.Store(victim, word(signed(st.pot.Load(victim))+5))
	st.recomputeNodeMin(victim)
	for _, a := range net.inArcs[victim] {
		st.recomputeNodeMin(net.tail[a])
	}
	got := st.nodeMin.Snapshot()

	// From-scratch reference.
	for n := 0; n < net.nodes; n++ {
		st.recomputeNodeMin(n)
	}
	want := st.nodeMin.Snapshot()
	for n := range want {
		if got[n] != want[n] {
			t.Fatalf("nodeMin[%d] stale after incremental refresh: %d vs %d", n, got[n], want[n])
		}
	}
}

// --- equake ---

// TestEquakeIncrementalEqualsRebuild checks the delta update of a column
// against rebuilding all products and row sums from scratch.
func TestEquakeIncrementalEqualsRebuild(t *testing.T) {
	sys := mem.NewSystem()
	st := newEquakeState(sys, testSize(), sys.Alloc)
	// Mutate a few displacements and rebuild only those columns.
	for _, j := range []int{3, 100, 701} {
		st.disp.Store(j, word(signed(st.disp.Load(j))+7))
		st.rebuildColumn(j)
	}
	gotOut := st.out.Snapshot()

	// Reference: recompute every row sum from the matrix directly.
	n := st.m.n
	want := make([]int64, n)
	for j := 0; j < n; j++ {
		d := signed(st.disp.Load(j))
		for c, r := range st.m.colRow[j] {
			want[r] += st.m.colVal[j][c] * d
		}
	}
	for r := 0; r < n; r++ {
		if signed(gotOut[r]) != want[r] {
			t.Fatalf("out[%d] = %d, want %d", r, signed(gotOut[r]), want[r])
		}
	}
}

// --- gcc ---

// TestGccCFGIsAcyclic verifies the topological property the fixpoint
// argument rests on.
func TestGccCFGIsAcyclic(t *testing.T) {
	g := buildGccCFG(testSize())
	for b := 0; b < g.blocks; b++ {
		for _, p := range g.preds[b] {
			if p >= b {
				t.Fatalf("edge %d -> %d breaks topological order", p, b)
			}
		}
		for _, s := range g.succs[b] {
			if s <= b {
				t.Fatalf("succ edge %d -> %d breaks topological order", b, s)
			}
		}
	}
}

// TestGccTopoPassIsFixpoint: after one topological pass, re-evaluating any
// block changes nothing.
func TestGccTopoPassIsFixpoint(t *testing.T) {
	sys := mem.NewSystem()
	st := newGccState(sys, testSize(), sys.Alloc)
	for b := 0; b < st.cfg.blocks; b++ {
		if st.evalBlock(b, func(b int, v mem.Word) bool { return st.out.Store(b, v) }) {
			t.Fatalf("block %d changed on re-evaluation: not a fixpoint", b)
		}
	}
}

// --- gzip / bzip2 ---

// TestGzipSignatureDetectsAnyWordChange: flipping any single word of a
// block must change its signature (the DTT correctness hinge).
func TestGzipSignatureDetectsAnyWordChange(t *testing.T) {
	sys := mem.NewSystem()
	st := newGzipState(sys, testSize(), sys.Alloc)
	st.writeRound(0, 0)
	orig := st.signature(0)
	for i := 0; i < gzipBlockWords; i++ {
		old := st.data.Load(i)
		st.data.Store(i, old+1)
		if st.signature(0) == orig {
			t.Fatalf("signature blind to change at word %d", i)
		}
		st.data.Store(i, old)
	}
	if st.signature(0) != orig {
		t.Fatalf("signature not a pure function of content")
	}
}

func TestBzip2TransformDeterministic(t *testing.T) {
	sys := mem.NewSystem()
	st := newBzip2State(sys, testSize(), sys.Alloc)
	st.writeRound(3, 1)
	st.transform(1)
	first := st.rank.Load(1)
	st.transform(1)
	if st.rank.Load(1) != first {
		t.Fatalf("transform not deterministic")
	}
}

// --- art ---

// TestArtFrozenRowsStayPut: an epoch update with a frozen (all-zero) delta
// must leave the row's weights bit-identical.
func TestArtFrozenRowsStayPut(t *testing.T) {
	sys := mem.NewSystem()
	st := newArtState(sys, testSize(), sys.Alloc)
	before := st.w.Snapshot()
	frozen := 0
	st.epochUpdate(1, 0, func(i int, changed bool) {
		if changed {
			return
		}
		frozen++
		for j := 0; j < artDims; j++ {
			if st.w.Peek(i*artDims+j) != before[i*artDims+j] {
				t.Fatalf("frozen row %d mutated at dim %d", i, j)
			}
		}
	})
	if frozen == 0 {
		t.Fatalf("no frozen rows in the update; redundancy mechanism missing")
	}
}

// --- crafty ---

// TestCraftyMoveDisturbsAtMostTwoFiles: re-scoring only the two touched
// files must restore the full-evaluation invariant total == sum(fileEval).
func TestCraftyMoveDisturbsAtMostTwoFiles(t *testing.T) {
	sys := mem.NewSystem()
	st := newCraftyState(sys, testSize(), sys.Alloc)
	for p := 0; p < 20; p++ {
		from, to, fromV, toV := craftyPly(st, 0, p)
		st.board.Store(from, fromV)
		st.board.Store(to, toV)
		st.refreshFile(from % craftyFiles)
		st.refreshFile(to % craftyFiles)
		var sum int64
		for f := 0; f < craftyFiles; f++ {
			sum += signed(st.fileEval.Load(f))
		}
		if sum != signed(st.total.Load(0)) {
			t.Fatalf("ply %d: total %d != sum of files %d", p, signed(st.total.Load(0)), sum)
		}
	}
}

// --- vortex ---

// TestVortexBucketLocality: a field write perturbs exactly one bucket's
// digest.
func TestVortexBucketLocality(t *testing.T) {
	sys := mem.NewSystem()
	st := newVortexState(sys, testSize(), sys.Alloc)
	before := st.digest.Snapshot()
	obj := 123
	st.fields.Store(obj*vortexFields+2, 0xdead)
	for b := 0; b < vortexBuckets; b++ {
		st.redigest(b)
	}
	changed := 0
	for b := 0; b < vortexBuckets; b++ {
		if st.digest.Peek(b) != before[b] {
			changed++
			if b != st.bucketOf(obj) {
				t.Fatalf("bucket %d changed but object lives in %d", b, st.bucketOf(obj))
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d buckets changed, want exactly 1", changed)
	}
}

// --- ammp / vpr / twolf: delta-maintained totals ---

// TestAmmpTotalMatchesPairSum: the delta-maintained total energy equals
// the sum of pair energies after arbitrary refreshes.
func TestAmmpTotalMatchesPairSum(t *testing.T) {
	sys := mem.NewSystem()
	st := newAmmpState(sys, testSize(), sys.Alloc)
	for step := 0; step < 5; step++ {
		for a := 0; a < st.tp.atoms; a++ {
			st.pos.Store(a, ammpStepPosition(st.tp, st, step, a))
		}
		for p := range st.tp.pairA {
			st.refreshPair(p)
		}
	}
	var sum int64
	for p := range st.tp.pairA {
		sum += signed(st.pairE.Peek(p))
	}
	if sum != signed(st.total.Peek(0)) {
		t.Fatalf("total %d != pair sum %d", signed(st.total.Peek(0)), sum)
	}
}

func TestVPRTotalMatchesNetSum(t *testing.T) {
	sys := mem.NewSystem()
	st := newVPRState(sys, testSize(), sys.Alloc)
	for iter := 0; iter < 10; iter++ {
		block := iter * 13 % st.nl.blocks
		st.pos.Store(block, packXY(iter*31%vprGrid, iter*17%vprGrid))
		for _, n := range st.nl.blockNets[block] {
			st.refreshNet(n)
		}
	}
	var sum int64
	for n := 0; n < st.nl.nets; n++ {
		sum += signed(st.netCost.Peek(n))
	}
	if sum != signed(st.total.Peek(0)) {
		t.Fatalf("total %d != net sum %d", signed(st.total.Peek(0)), sum)
	}
}

func TestTwolfRowPenaltyNonNegative(t *testing.T) {
	sys := mem.NewSystem()
	st := newTwolfState(sys, testSize(), sys.Alloc)
	for r := 0; r < st.rows; r++ {
		if p := st.rowPenalty(r); p < 0 {
			t.Fatalf("row %d penalty %d negative", r, p)
		}
	}
}

// --- mesa ---

// TestMesaTransformPureFunctionOfPosition: retransforming an unmoved
// vertex must be a no-op on screen coordinates.
func TestMesaTransformPureFunctionOfPosition(t *testing.T) {
	sys := mem.NewSystem()
	st := newMesaState(sys, testSize(), sys.Alloc)
	before := st.screen.Snapshot()
	for v := 0; v < st.verts; v += 7 {
		st.transform(v)
		if st.screen.Peek(v) != before[v] {
			t.Fatalf("vertex %d moved without a position change", v)
		}
	}
}

// --- parser ---

// TestParserDeriveDependsOnlyOnDictEntry: deriving twice from the same
// entry is stable; changing the entry changes the derived cost.
func TestParserDeriveDependsOnlyOnDictEntry(t *testing.T) {
	sys := mem.NewSystem()
	st := newParserState(sys, testSize(), sys.Alloc)
	st.derive(5)
	first := st.wordCost.Load(5)
	st.derive(5)
	if st.wordCost.Load(5) != first {
		t.Fatalf("derive not deterministic")
	}
	st.dict.Store(5, mem.Word(uint64(st.dict.Load(5))+1))
	st.derive(5)
	if st.wordCost.Load(5) == first {
		t.Fatalf("derive blind to dictionary change")
	}
}

// TestPackUnpackRoundTrip covers the packed-coordinate helpers shared by
// vpr, ammp and mesa.
func TestPackUnpackRoundTrip(t *testing.T) {
	for _, xy := range [][2]int{{0, 0}, {1, 2}, {1023, 1023}, {512, 7}} {
		x, y := unpackXY(packXY(xy[0], xy[1]))
		if x != xy[0] || y != xy[1] {
			t.Fatalf("pack/unpack(%v) = %d,%d", xy, x, y)
		}
	}
}
