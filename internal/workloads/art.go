package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// artWorkload models 179.art, the Adaptive Resonance Theory image
// recogniser.
//
// art's training loop recomputes the bottom-up activation of every F2
// neuron against every input in the batch on each epoch, although an epoch
// updates the weights of only the winning neuron's neighbourhood — the
// activations of untouched neurons are recomputed to identical values. The
// DTT transform guards each neuron's weight row with a per-row trigger
// word: a support thread recomputes a neuron's activations only when its
// row actually changed.
type artWorkload struct{}

func init() { register(artWorkload{}) }

func (artWorkload) Name() string  { return "art" }
func (artWorkload) Suite() string { return "SPEC CPU2000 fp (179.art)" }
func (artWorkload) Description() string {
	return "neural-net activations: recompute a neuron's batch activations only when its weight row changed"
}

// art dimensions.
const (
	artNeuronsBase = 128
	artDims        = 48
	artBatch       = 24
	artSelected    = 128 // neurons touched by one epoch's weight update
	artMACCost     = 2   // ALU ops per multiply-accumulate
)

type artState struct {
	sys     *mem.System
	neurons int
	w       *mem.Buffer // weights, row-major [neuron][dim]
	y       *mem.Buffer // activations, [neuron][batch]
	inputs  [][]int64   // static batch inputs
}

// activate recomputes neuron i's activation against every batch input.
func (st *artState) activate(i int) {
	for b, x := range st.inputs {
		var acc int64
		for j := 0; j < artDims; j++ {
			acc += signed(st.w.Load(i*artDims+j)) * x[j]
			st.sys.Compute(artMACCost)
		}
		st.y.Store(i*artBatch+b, word(acc))
	}
}

// winner scans activations for the epoch's best (neuron, input) pair.
func (st *artState) winner() (best int, bestVal int64) {
	bestVal = -(int64(1) << 62)
	for i := 0; i < st.neurons; i++ {
		for b := 0; b < artBatch; b++ {
			v := signed(st.y.Load(i*artBatch + b))
			st.sys.Compute(1)
			if v > bestVal {
				bestVal, best = v, i
			}
		}
	}
	return best, bestVal
}

// epochUpdate applies the epoch's weight update around the winner. About a
// third of the selected neurons receive an all-zero adjustment — art's
// redundant weight writes. After each row, onRow (if non-nil) is told
// whether any weight in that row actually changed; the DTT variant uses it
// to advance the row's trigger word.
func (st *artState) epochUpdate(epoch, winner int, onRow func(i int, changed bool)) {
	h := uint64(epoch)*0x9e3779b97f4a7c15 + uint64(winner)
	for s := 0; s < artSelected; s++ {
		i := (winner + s*7) % st.neurons
		h ^= h >> 31
		h *= 0xbf58476d1ce4e5b9
		frozen := h%3 == 0
		rowChanged := false
		for j := 0; j < artDims; j++ {
			delta := int64((h>>uint(j%32))%3) - 1
			if frozen {
				delta = 0
			}
			v := signed(st.w.Load(i*artDims+j)) + delta
			if st.w.Store(i*artDims+j, word(v)) {
				rowChanged = true
			}
			st.sys.Compute(1)
		}
		if onRow != nil {
			onRow(i, rowChanged)
		}
	}
}

func newArtState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *artState {
	size = size.withDefaults()
	n := artNeuronsBase * size.Scale
	st := &artState{
		sys:     sys,
		neurons: n,
		w:       alloc("art.w", n*artDims),
		y:       alloc("art.y", n*artBatch),
	}
	rng := NewRNG(size.Seed ^ 0xa47)
	for i := 0; i < n*artDims; i++ {
		st.w.Poke(i, word(int64(rng.Intn(16))))
	}
	st.inputs = make([][]int64, artBatch)
	for b := range st.inputs {
		st.inputs[b] = make([]int64, artDims)
		for j := range st.inputs[b] {
			st.inputs[b][j] = int64(rng.Intn(8))
		}
	}
	for i := 0; i < n; i++ {
		st.activate(i)
	}
	return st
}

func artChecksum(sum uint64, st *artState) uint64 {
	for i := 0; i < st.neurons*artBatch; i++ {
		sum = checksum(sum, uint64(st.y.Peek(i)))
	}
	for i := 0; i < st.neurons*artDims; i++ {
		sum = checksum(sum, uint64(st.w.Peek(i)))
	}
	return sum
}

func (artWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newArtState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for epoch := 0; epoch < size.Iters; epoch++ {
		if epoch > 0 {
			// Recompute every neuron's activations, touched or not.
			for i := 0; i < st.neurons; i++ {
				st.activate(i)
			}
		}
		win, val := st.winner()
		sum = checksum(sum, uint64(win))
		sum = checksum(sum, uint64(val))
		st.epochUpdate(epoch, win, nil)
	}
	for i := 0; i < st.neurons; i++ {
		st.activate(i)
	}
	return Result{Checksum: artChecksum(sum, st)}, nil
}

func (artWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("art: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	st := newArtState(env.Sys, size, env.Sys.Alloc)

	// One guard word per neuron row: it only advances when a weight in
	// the row really changed, making it the canonical trigger word for the
	// row — the paper's one-trigger-per-computation idiom, packaged by
	// core.GuardSet.
	rowGuards := core.NewGuardSet(rt, "art.rowGen", st.neurons)

	refresh := rt.Register("art.activate", func(tg core.Trigger) {
		st.activate(tg.Index)
	})
	if err := rt.Attach(refresh, rowGuards.Region(), 0, st.neurons); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for epoch := 0; epoch < size.Iters; epoch++ {
		if epoch > 0 {
			rt.Wait(refresh)
		}
		win, val := st.winner()
		sum = checksum(sum, uint64(win))
		sum = checksum(sum, uint64(val))
		st.epochUpdate(epoch, win, func(i int, changed bool) {
			// An all-zero update leaves the guard alone and the tstore is
			// silent, skipping the neuron's reactivation entirely.
			rowGuards.Update(i, changed)
		})
	}
	rt.Barrier()
	return Result{Checksum: artChecksum(sum, st), Triggers: st.neurons}, nil
}
