package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// Synthetic is the controlled microbenchmark behind the when-does-DTT-pay-
// off characterisation (experiment F14). Unlike the SPEC kernels, every
// quantity that determines DTT's profit is a dial:
//
//   - ChangeFraction: the probability that a round's write to an input
//     actually changes it (1 - redundancy);
//   - ThreadOps: the cost of the computation guarded by each trigger;
//   - ConsumeOps: the main thread's per-round fixed work.
//
// The baseline recomputes every derived entry every round; the DTT variant
// recomputes only changed entries. It is deliberately not part of the
// SPEC-named registry: it models no program, it maps the design space.
type Synthetic struct {
	// Inputs is the number of trigger words.
	Inputs int
	// ChangeFraction in [0, 1] is the per-round probability an input's
	// rewrite changes its value.
	ChangeFraction float64
	// ThreadOps is the ALU cost of recomputing one derived entry.
	ThreadOps int
	// ConsumeOps is the main thread's fixed per-round work.
	ConsumeOps int
}

// DefaultSynthetic returns a middle-of-the-road configuration.
func DefaultSynthetic() Synthetic {
	return Synthetic{Inputs: 256, ChangeFraction: 0.25, ThreadOps: 64, ConsumeOps: 512}
}

func (sy Synthetic) validate() error {
	switch {
	case sy.Inputs <= 0:
		return fmt.Errorf("workloads: synthetic with %d inputs", sy.Inputs)
	case sy.ChangeFraction < 0 || sy.ChangeFraction > 1:
		return fmt.Errorf("workloads: synthetic change fraction %v outside [0,1]", sy.ChangeFraction)
	case sy.ThreadOps < 1 || sy.ConsumeOps < 0:
		return fmt.Errorf("workloads: synthetic costs %d/%d invalid", sy.ThreadOps, sy.ConsumeOps)
	}
	return nil
}

type synthState struct {
	sys     *mem.System
	sy      Synthetic
	in, out *mem.Buffer
}

// inputAt derives input i's value in a round: it changes with probability
// ChangeFraction, deterministically from (round, i, seed).
func (st *synthState) inputAt(round, i int, seed uint64) mem.Word {
	h := uint64(round)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + seed
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	threshold := uint64(st.sy.ChangeFraction * (1 << 32))
	if (h&0xffffffff) < threshold || round == 0 {
		return mem.Word(h>>32 | 1) // fresh value (never the zero word)
	}
	return st.in.Load(i) // rewrite of the current value: silent
}

// derive recomputes derived entry i: ThreadOps of integer mixing.
func (st *synthState) derive(i int) {
	v := uint64(st.in.Load(i))
	for k := 0; k < st.sy.ThreadOps; k++ {
		v = v*6364136223846793005 + 1442695040888963407
	}
	st.sys.Compute(int64(st.sy.ThreadOps))
	st.out.Store(i, mem.Word(v))
}

// consume is the main thread's fixed work plus a fold of the derived table.
func (st *synthState) consume(sum uint64) uint64 {
	st.sys.Compute(int64(st.sy.ConsumeOps))
	for i := 0; i < st.sy.Inputs; i += 16 {
		sum = checksum(sum, uint64(st.out.Load(i)))
	}
	return sum
}

func newSynthState(sys *mem.System, sy Synthetic, alloc func(string, int) *mem.Buffer) *synthState {
	st := &synthState{sys: sys, sy: sy}
	st.in = alloc("synthetic.in", sy.Inputs)
	st.out = alloc("synthetic.out", sy.Inputs)
	return st
}

// RunBaseline executes the recompute-everything variant.
func (sy Synthetic) RunBaseline(env *Env, size Size) (Result, error) {
	if err := sy.validate(); err != nil {
		return Result{}, err
	}
	size = size.withDefaults()
	st := newSynthState(env.Sys, sy, env.Sys.Alloc)
	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		for i := 0; i < sy.Inputs; i++ {
			st.in.Store(i, st.inputAt(round, i, size.Seed))
		}
		for i := 0; i < sy.Inputs; i++ {
			st.derive(i)
		}
		sum = st.consume(sum)
	}
	return Result{Checksum: sum}, nil
}

// RunDTT executes the data-triggered variant.
func (sy Synthetic) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("synthetic: DTT run without a runtime")
	}
	if err := sy.validate(); err != nil {
		return Result{}, err
	}
	size = size.withDefaults()
	rt := env.RT
	var inRegion *core.Region
	st := newSynthState(env.Sys, sy, func(name string, n int) *mem.Buffer {
		if name == "synthetic.in" {
			inRegion = rt.NewRegion(name, n)
			return inRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})
	rederive := rt.Register("synthetic.derive", func(tg core.Trigger) {
		st.derive(tg.Index)
	})
	if err := rt.Attach(rederive, inRegion, 0, sy.Inputs); err != nil {
		return Result{}, err
	}
	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		for i := 0; i < sy.Inputs; i++ {
			inRegion.TStore(i, st.inputAt(round, i, size.Seed))
		}
		rt.Wait(rederive)
		sum = st.consume(sum)
	}
	rt.Barrier()
	return Result{Checksum: sum, Triggers: sy.Inputs}, nil
}
