package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// gccWorkload models 176.gcc's dataflow analysis.
//
// gcc re-runs whole-function dataflow passes after every transformation,
// although an edit perturbs the GEN/KILL sets of a handful of basic blocks
// and most block solutions come out unchanged. The kernel solves a
// reaching-definitions-style problem over an acyclic CFG: the baseline
// re-evaluates every block in topological order each round; the DTT
// version seeds triggers at the edited blocks and lets *cascading*
// triggering stores on the OUT sets implement the worklist — a block's
// support thread re-evaluates its successors, whose OUT tstores fire the
// thread again, and propagation dies out exactly where solutions stop
// changing.
type gccWorkload struct{}

func init() { register(gccWorkload{}) }

func (gccWorkload) Name() string  { return "gcc" }
func (gccWorkload) Suite() string { return "SPEC CPU2000 int (176.gcc)" }
func (gccWorkload) Description() string {
	return "dataflow fixpoint: cascading triggers propagate only from blocks whose solution changed"
}

// gcc dimensions.
const (
	gccBlocksBase = 640
	gccMaxPreds   = 3
	gccEvalCost   = 4 // ALU ops per block evaluation beyond the pred scan
	gccEdits      = 10
	gccCodegenOps = 12 // ALU ops per block in the downstream codegen scan
)

// gccCFG is an acyclic control-flow graph: edges go from lower to higher
// block ids, so the dataflow solution is unique and one topological pass
// computes it exactly.
type gccCFG struct {
	blocks int
	preds  [][]int
	succs  [][]int
}

func buildGccCFG(size Size) *gccCFG {
	size = size.withDefaults()
	g := &gccCFG{blocks: gccBlocksBase * size.Scale}
	g.preds = make([][]int, g.blocks)
	g.succs = make([][]int, g.blocks)
	rng := NewRNG(size.Seed ^ 0x6cc)
	for b := 1; b < g.blocks; b++ {
		npred := 1 + rng.Intn(gccMaxPreds)
		window := 12
		for p := 0; p < npred; p++ {
			lo := b - window
			if lo < 0 {
				lo = 0
			}
			pred := lo + rng.Intn(b-lo)
			g.preds[b] = append(g.preds[b], pred)
			g.succs[pred] = append(g.succs[pred], b)
		}
	}
	return g
}

type gccState struct {
	sys *mem.System
	cfg *gccCFG
	// genKill packs each block's GEN (low 32 bits) and KILL (high 32
	// bits) sets; out holds the block's OUT bitset.
	genKill *mem.Buffer
	out     *mem.Buffer
}

// evalBlock recomputes OUT[b] = GEN[b] | (IN[b] &^ KILL[b]) with IN the
// union of predecessor OUTs, and returns whether it changed. The store
// goes through the supplied writer so the DTT variant can make it a
// cascading triggering store.
func (st *gccState) evalBlock(b int, storeOut func(b int, v mem.Word) bool) bool {
	var in uint64
	for _, p := range st.cfg.preds[b] {
		in |= uint64(st.out.Load(p))
		st.sys.Compute(1)
	}
	gk := uint64(st.genKill.Load(b))
	gen := gk & 0xffffffff
	kill := gk >> 32
	st.sys.Compute(gccEvalCost)
	return storeOut(b, mem.Word(gen|(in&^kill)))
}

// gccEditSet derives the round's GEN/KILL edits; roughly a third rewrite
// the block's current value (silent).
func gccEditSet(st *gccState, round int) (blocks []int, vals []mem.Word) {
	h := uint64(round)*0x9e3779b97f4a7c15 + 0x6cc
	for e := 0; e < gccEdits; e++ {
		h ^= h >> 31
		h *= 0xbf58476d1ce4e5b9
		b := int(h % uint64(st.cfg.blocks))
		v := mem.Word(h >> 16)
		if (h>>8)%3 == 0 {
			v = st.genKill.Load(b)
		}
		st.sys.Compute(2)
		blocks = append(blocks, b)
		vals = append(vals, v)
	}
	return blocks, vals
}

func newGccState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *gccState {
	cfg := buildGccCFG(size)
	st := &gccState{
		sys:     sys,
		cfg:     cfg,
		genKill: alloc("gcc.genKill", cfg.blocks),
		out:     alloc("gcc.out", cfg.blocks),
	}
	rng := NewRNG(size.Seed ^ 0x777)
	for b := 0; b < cfg.blocks; b++ {
		st.genKill.Poke(b, mem.Word(rng.Uint64()))
	}
	// Initial exact solution, one topological pass.
	for b := 0; b < cfg.blocks; b++ {
		st.evalBlock(b, func(b int, v mem.Word) bool { return st.out.Store(b, v) })
	}
	return st
}

// codegen is the downstream pass that consumes the dataflow solution: a
// scan over all blocks' OUT sets, identical in both variants.
func (st *gccState) codegen() uint64 {
	acc := uint64(0)
	for b := 0; b < st.cfg.blocks; b++ {
		acc = (acc ^ uint64(st.out.Load(b))) * 0x01000193
		st.sys.Compute(gccCodegenOps)
	}
	return acc
}

func gccChecksum(sum uint64, st *gccState) uint64 {
	for b := 0; b < st.cfg.blocks; b++ {
		sum = checksum(sum, uint64(st.out.Peek(b)))
		sum = checksum(sum, uint64(st.genKill.Peek(b)))
	}
	return sum
}

func (gccWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newGccState(env.Sys, size, env.Sys.Alloc)
	plainStore := func(b int, v mem.Word) bool { return st.out.Store(b, v) }
	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		blocks, vals := gccEditSet(st, round)
		for i, b := range blocks {
			st.genKill.Store(b, vals[i])
		}
		// Re-run the whole pass, block by block, edited or not.
		for b := 0; b < st.cfg.blocks; b++ {
			st.evalBlock(b, plainStore)
		}
		sum = checksum(sum, st.codegen())
	}
	return Result{Checksum: gccChecksum(sum, st)}, nil
}

func (gccWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("gcc: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var genKill, out *core.Region
	st := newGccState(env.Sys, size, func(name string, n int) *mem.Buffer {
		switch name {
		case "gcc.genKill":
			genKill = rt.NewRegion(name, n)
			return genKill.Buffer()
		case "gcc.out":
			out = rt.NewRegion(name, n)
			return out.Buffer()
		default:
			return env.Sys.Alloc(name, n)
		}
	})
	// OUT writes go through triggering stores so changed solutions cascade.
	tstoreOut := func(b int, v mem.Word) bool { return out.TStore(b, v) }

	// One thread, two trigger regions: instances of a single thread run
	// serially, so block evaluations never race, and because every changed
	// OUT re-triggers its successors the drained state is the unique DAG
	// fixpoint regardless of queue order.
	dataflow := rt.Register("gcc.dataflow", func(tg core.Trigger) {
		if tg.Region == genKill {
			// A block's GEN/KILL changed: re-evaluate it.
			st.evalBlock(tg.Index, tstoreOut)
			return
		}
		// A block's OUT changed: re-evaluate its successors; their own
		// OUT tstores keep the cascade going.
		for _, s := range st.cfg.succs[tg.Index] {
			st.evalBlock(s, tstoreOut)
		}
	})
	if err := rt.Attach(dataflow, genKill, 0, st.cfg.blocks); err != nil {
		return Result{}, err
	}
	if err := rt.Attach(dataflow, out, 0, st.cfg.blocks); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		blocks, vals := gccEditSet(st, round)
		for i, b := range blocks {
			genKill.TStore(b, vals[i])
		}
		rt.Barrier() // drain the whole cascade
		sum = checksum(sum, st.codegen())
	}
	return Result{Checksum: gccChecksum(sum, st), Triggers: 2 * st.cfg.blocks}, nil
}
