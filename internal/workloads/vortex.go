package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// vortexWorkload models 255.vortex, the object-oriented database.
//
// vortex mutates objects through transactions and then rebuilds derived
// structures wholesale, although most transactions rewrite fields with the
// values they already hold — vortex has one of the highest silent-store
// rates in SPEC. The kernel keeps a table of objects hashed into buckets
// with a per-bucket digest index; the DTT transform attaches the digest
// recomputation to the object fields, so only buckets holding genuinely
// mutated objects are re-digested.
type vortexWorkload struct{}

func init() { register(vortexWorkload{}) }

func (vortexWorkload) Name() string  { return "vortex" }
func (vortexWorkload) Suite() string { return "SPEC CPU2000 int (255.vortex)" }
func (vortexWorkload) Description() string {
	return "database index: re-digest only buckets whose objects actually changed"
}

// vortex dimensions.
const (
	vortexObjectsBase = 512
	vortexFields      = 6
	vortexBuckets     = 64
	vortexDigestCost  = 3   // ALU ops per field digested
	vortexTxns        = 48  // object updates per round
	vortexLookups     = 800 // index lookups per round (main-thread work)
)

type vortexState struct {
	sys     *mem.System
	objects int
	fields  *mem.Buffer // object fields, [obj*vortexFields + f]
	digest  *mem.Buffer // per-bucket digest
	members [][]int     // bucket -> object ids (static hashing)
}

func (st *vortexState) bucketOf(obj int) int { return obj % vortexBuckets }

// redigest recomputes the digest of one bucket from its members' fields.
func (st *vortexState) redigest(bucket int) {
	h := uint64(0x811c9dc5)
	for _, obj := range st.members[bucket] {
		for f := 0; f < vortexFields; f++ {
			h = (h ^ uint64(st.fields.Load(obj*vortexFields+f))) * 0x01000193
			st.sys.Compute(vortexDigestCost)
		}
	}
	st.digest.Store(bucket, mem.Word(h))
}

// vortexTxnSet derives the round's transactions. Half of the field writes
// store the value already present.
func vortexTxnSet(st *vortexState, round int) (objs []int, fields []int, vals []mem.Word) {
	h := uint64(round)*0x9e3779b97f4a7c15 + 0x70f
	for t := 0; t < vortexTxns; t++ {
		h ^= h >> 30
		h *= 0x94d049bb133111eb
		obj := int(h % uint64(st.objects))
		field := int((h >> 20) % vortexFields)
		v := mem.Word(h >> 32)
		if (h>>12)%2 == 0 {
			v = st.fields.Load(obj*vortexFields + field)
		}
		st.sys.Compute(2)
		objs = append(objs, obj)
		fields = append(fields, field)
		vals = append(vals, v)
	}
	return
}

func newVortexState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *vortexState {
	size = size.withDefaults()
	st := &vortexState{sys: sys, objects: vortexObjectsBase * size.Scale}
	st.fields = alloc("vortex.fields", st.objects*vortexFields)
	st.digest = alloc("vortex.digest", vortexBuckets)
	st.members = make([][]int, vortexBuckets)
	rng := NewRNG(size.Seed ^ 0x70e)
	for obj := 0; obj < st.objects; obj++ {
		st.members[st.bucketOf(obj)] = append(st.members[st.bucketOf(obj)], obj)
		for f := 0; f < vortexFields; f++ {
			st.fields.Poke(obj*vortexFields+f, mem.Word(rng.Uint64()>>20))
		}
	}
	for b := 0; b < vortexBuckets; b++ {
		st.redigest(b)
	}
	return st
}

func vortexChecksum(sum uint64, st *vortexState) uint64 {
	for b := 0; b < vortexBuckets; b++ {
		sum = checksum(sum, uint64(st.digest.Peek(b)))
	}
	for i := 0; i < st.objects*vortexFields; i++ {
		sum = checksum(sum, uint64(st.fields.Peek(i)))
	}
	return sum
}

// query is the per-round main-thread work: probe a set of buckets and fold
// their digests.
func (st *vortexState) query(round int) uint64 {
	h := uint64(round) * 0x9e3779b97f4a7c15
	acc := uint64(0)
	for q := 0; q < vortexLookups; q++ {
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		b := int(h % vortexBuckets)
		acc = (acc ^ uint64(st.digest.Load(b))) * 0x01000193
		st.sys.Compute(3)
	}
	return acc
}

func (vortexWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newVortexState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		objs, fields, vals := vortexTxnSet(st, round)
		for i := range objs {
			st.fields.Store(objs[i]*vortexFields+fields[i], vals[i])
		}
		// Rebuild the whole index, touched or not.
		for b := 0; b < vortexBuckets; b++ {
			st.redigest(b)
		}
		sum = checksum(sum, st.query(round))
	}
	return Result{Checksum: vortexChecksum(sum, st)}, nil
}

func (vortexWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("vortex: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var fieldsRegion *core.Region
	st := newVortexState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "vortex.fields" {
			fieldsRegion = rt.NewRegion(name, n)
			return fieldsRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	index := rt.Register("vortex.redigest", func(tg core.Trigger) {
		st.redigest(st.bucketOf(tg.Index / vortexFields))
	})
	if err := rt.Attach(index, fieldsRegion, 0, st.objects*vortexFields); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		objs, fields, vals := vortexTxnSet(st, round)
		for i := range objs {
			fieldsRegion.TStore(objs[i]*vortexFields+fields[i], vals[i])
		}
		rt.Wait(index)
		sum = checksum(sum, st.query(round))
	}
	rt.Barrier()
	return Result{Checksum: vortexChecksum(sum, st), Triggers: st.objects * vortexFields}, nil
}
