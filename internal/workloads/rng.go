package workloads

// RNG is a small deterministic generator (splitmix64) so workload inputs
// are reproducible across runs and platforms without math/rand's global
// state. It is not used inside measured regions.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. A zero seed is remapped so the stream is never
// degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics for non-positive n.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workloads: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
