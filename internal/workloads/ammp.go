package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// ammpWorkload models 188.ammp's non-bonded force evaluation.
//
// ammp recomputes pairwise interactions over its neighbour list every time
// step, but atoms move slowly: on the grid resolution that matters for the
// potential, most atoms stand still between steps. The kernel stores
// quantised atom positions through triggering stores; a support thread
// re-evaluates only the pairs incident to atoms whose quantised position
// changed.
type ammpWorkload struct{}

func init() { register(ammpWorkload{}) }

func (ammpWorkload) Name() string  { return "ammp" }
func (ammpWorkload) Suite() string { return "SPEC CPU2000 fp (188.ammp)" }
func (ammpWorkload) Description() string {
	return "pairwise forces: re-evaluate only pairs whose atom's quantised position moved"
}

// ammp dimensions.
const (
	ammpAtomsBase = 384
	ammpDegree    = 12 // neighbours per atom
	ammpPairCost  = 6  // ALU ops per pair evaluation
	ammpGrid      = 1 << 14
	ammpMoveFrac  = 2 // 1/frac of the atoms move per step
)

type ammpTopology struct {
	atoms     int
	pairA     []int
	pairB     []int
	atomPairs [][]int
}

func buildAmmpTopology(size Size) *ammpTopology {
	size = size.withDefaults()
	tp := &ammpTopology{atoms: ammpAtomsBase * size.Scale}
	tp.atomPairs = make([][]int, tp.atoms)
	rng := NewRNG(size.Seed ^ 0x4dd)
	for a := 0; a < tp.atoms; a++ {
		for d := 0; d < ammpDegree/2; d++ {
			b := rng.Intn(tp.atoms - 1)
			if b >= a {
				b++
			}
			p := len(tp.pairA)
			tp.pairA = append(tp.pairA, a)
			tp.pairB = append(tp.pairB, b)
			tp.atomPairs[a] = append(tp.atomPairs[a], p)
			tp.atomPairs[b] = append(tp.atomPairs[b], p)
		}
	}
	return tp
}

type ammpState struct {
	sys   *mem.System
	tp    *ammpTopology
	pos   *mem.Buffer // quantised packed positions
	pairE *mem.Buffer // per-pair interaction energy
	total *mem.Buffer // [0] = total energy
}

// pairEnergy evaluates the interaction of pair p from current positions:
// an integer inverse-square-flavoured potential.
func (st *ammpState) pairEnergy(p int) int64 {
	xa, ya := unpackXY(st.pos.Load(st.tp.pairA[p]))
	xb, yb := unpackXY(st.pos.Load(st.tp.pairB[p]))
	dx, dy := int64(xa-xb), int64(ya-yb)
	d2 := dx*dx + dy*dy + 1
	st.sys.Compute(ammpPairCost)
	return (1 << 30) / d2
}

// refreshPair re-evaluates pair p and folds the delta into the total.
func (st *ammpState) refreshPair(p int) {
	old := signed(st.pairE.Load(p))
	nw := st.pairEnergy(p)
	if nw != old {
		st.pairE.Store(p, word(nw))
		st.total.Store(0, word(signed(st.total.Load(0))+nw-old))
		st.sys.Compute(1)
	}
}

// stepPosition returns atom a's quantised position at a step. Most atoms
// return their previous position: ammp's slow motion on the grid.
func ammpStepPosition(tp *ammpTopology, st *ammpState, step, a int) mem.Word {
	h := uint64(step)*0x9e3779b97f4a7c15 + uint64(a)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	if h%ammpMoveFrac != 0 {
		return st.pos.Load(a) // unmoved: the store will be silent
	}
	x, y := unpackXY(st.pos.Load(a))
	x = (x + int(h>>40)%17 - 8 + ammpGrid) % ammpGrid
	y = (y + int(h>>52)%17 - 8 + ammpGrid) % ammpGrid
	return packXY(x, y)
}

func newAmmpState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *ammpState {
	tp := buildAmmpTopology(size)
	st := &ammpState{
		sys:   sys,
		tp:    tp,
		pos:   alloc("ammp.pos", tp.atoms),
		pairE: alloc("ammp.pairE", len(tp.pairA)),
		total: alloc("ammp.total", 1),
	}
	rng := NewRNG(size.Seed ^ 0x661)
	for a := 0; a < tp.atoms; a++ {
		st.pos.Poke(a, packXY(rng.Intn(ammpGrid), rng.Intn(ammpGrid)))
	}
	var total int64
	for p := range tp.pairA {
		e := st.pairEnergy(p)
		st.pairE.Poke(p, word(e))
		total += e
	}
	st.total.Poke(0, word(total))
	return st
}

func ammpChecksum(sum uint64, st *ammpState) uint64 {
	sum = checksum(sum, uint64(st.total.Peek(0)))
	for p := range st.tp.pairA {
		sum = checksum(sum, uint64(st.pairE.Peek(p)))
	}
	for a := 0; a < st.tp.atoms; a++ {
		sum = checksum(sum, uint64(st.pos.Peek(a)))
	}
	return sum
}

func (ammpWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newAmmpState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for step := 0; step < size.Iters; step++ {
		for a := 0; a < st.tp.atoms; a++ {
			st.pos.Store(a, ammpStepPosition(st.tp, st, step, a))
		}
		// Re-evaluate every pair, moved or not.
		for p := range st.tp.pairA {
			st.refreshPair(p)
		}
		sum = checksum(sum, uint64(st.total.Load(0)))
	}
	return Result{Checksum: sum}, nil
}

func (ammpWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("ammp: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var posRegion *core.Region
	st := newAmmpState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "ammp.pos" {
			posRegion = rt.NewRegion(name, n)
			return posRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	forces := rt.Register("ammp.forces", func(tg core.Trigger) {
		for _, p := range st.tp.atomPairs[tg.Index] {
			st.refreshPair(p)
		}
	})
	if err := rt.Attach(forces, posRegion, 0, st.tp.atoms); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for step := 0; step < size.Iters; step++ {
		for a := 0; a < st.tp.atoms; a++ {
			posRegion.TStore(a, ammpStepPosition(st.tp, st, step, a))
		}
		rt.Wait(forces)
		sum = checksum(sum, uint64(st.total.Load(0)))
	}
	rt.Barrier()
	return Result{Checksum: sum, Triggers: st.tp.atoms}, nil
}
