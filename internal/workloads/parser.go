package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// parserWorkload models 197.parser, the link-grammar parser.
//
// parser derives per-word connector costs from its dictionary and then
// reuses them across every sentence; the dictionary barely changes while
// the parse loop re-derives word costs wholesale. The kernel keeps a
// dictionary of entries and a long token stream: each round updates a
// handful of dictionary entries (some updates rewrite the same value) and
// then scores the stream. The DTT transform recomputes a word's derived
// cost only when its dictionary entry actually changed.
type parserWorkload struct{}

func init() { register(parserWorkload{}) }

func (parserWorkload) Name() string  { return "parser" }
func (parserWorkload) Suite() string { return "SPEC CPU2000 int (197.parser)" }
func (parserWorkload) Description() string {
	return "dictionary-derived word costs: re-derive only entries whose dictionary word changed"
}

// parser dimensions.
const (
	parserVocabBase  = 512
	parserTextBase   = 24576
	parserDeriveCost = 32 // ALU ops to derive one word's cost (morphology)
	parserUpdates    = 40 // dictionary updates attempted per round
)

type parserState struct {
	sys      *mem.System
	vocab    int
	dict     *mem.Buffer // dictionary entries (trigger words in DTT)
	wordCost *mem.Buffer // derived per-word costs
	text     []int       // static token stream
}

// derive recomputes word v's cost from its dictionary entry: an iterated
// mixing loop standing in for parser's morphology and connector expansion.
func (st *parserState) derive(v int) {
	e := st.dict.Load(v)
	c := uint64(e)
	for k := 0; k < parserDeriveCost; k++ {
		c = c*6364136223846793005 + 1442695040888963407
		st.sys.Compute(1)
	}
	st.wordCost.Store(v, mem.Word(c>>32))
}

// score walks the token stream accumulating word costs — the parse loop
// proper, identical in both variants.
func (st *parserState) score() int64 {
	var total int64
	for _, tok := range st.text {
		total += signed(st.wordCost.Load(tok)) & 0xffff
		st.sys.Compute(1)
	}
	return total
}

// updateDict applies the round's dictionary updates through store. Half of
// the attempted updates rewrite the entry's current value.
func (st *parserState) updateDict(round int, store func(v int, w mem.Word)) {
	h := uint64(round)*0x9e3779b97f4a7c15 + 0x515
	for u := 0; u < parserUpdates; u++ {
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		v := int(h % uint64(st.vocab))
		nw := mem.Word(h >> 32)
		if (h>>16)%2 == 0 {
			nw = mem.Word(st.dict.Load(v)) // rewrite same value: silent
		}
		st.sys.Compute(2)
		store(v, nw)
	}
}

func newParserState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *parserState {
	size = size.withDefaults()
	st := &parserState{sys: sys, vocab: parserVocabBase * size.Scale}
	st.dict = alloc("parser.dict", st.vocab)
	st.wordCost = alloc("parser.wordCost", st.vocab)
	rng := NewRNG(size.Seed ^ 0x9a1)
	for v := 0; v < st.vocab; v++ {
		st.dict.Poke(v, mem.Word(rng.Uint64()>>16))
	}
	st.text = make([]int, parserTextBase*size.Scale)
	for i := range st.text {
		// Zipf-flavoured token distribution: low word ids dominate, as
		// real text does.
		r := rng.Intn(st.vocab * 4)
		if r >= st.vocab {
			r = rng.Intn(st.vocab / 8)
		}
		st.text[i] = r
	}
	for v := 0; v < st.vocab; v++ {
		st.derive(v)
	}
	return st
}

func parserChecksum(sum uint64, st *parserState) uint64 {
	for v := 0; v < st.vocab; v++ {
		sum = checksum(sum, uint64(st.wordCost.Peek(v)))
		sum = checksum(sum, uint64(st.dict.Peek(v)))
	}
	return sum
}

func (parserWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newParserState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		if round > 0 {
			// Re-derive every word cost, changed or not.
			for v := 0; v < st.vocab; v++ {
				st.derive(v)
			}
		}
		sum = checksum(sum, uint64(st.score()))
		st.updateDict(round, func(v int, w mem.Word) { st.dict.Store(v, w) })
	}
	for v := 0; v < st.vocab; v++ {
		st.derive(v)
	}
	return Result{Checksum: parserChecksum(sum, st)}, nil
}

func (parserWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("parser: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var dictRegion *core.Region
	st := newParserState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "parser.dict" {
			dictRegion = rt.NewRegion(name, n)
			return dictRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	rederive := rt.Register("parser.derive", func(tg core.Trigger) {
		st.derive(tg.Index)
	})
	if err := rt.Attach(rederive, dictRegion, 0, st.vocab); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		if round > 0 {
			rt.Wait(rederive)
		}
		sum = checksum(sum, uint64(st.score()))
		st.updateDict(round, func(v int, w mem.Word) { dictRegion.TStore(v, w) })
	}
	rt.Barrier()
	return Result{Checksum: parserChecksum(sum, st), Triggers: st.vocab}, nil
}
