package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// mcfWorkload models 429.mcf / 181.mcf, the paper's headline benchmark.
//
// mcf's network-simplex inner loop recomputes the reduced cost of every arc
// (cost + potential[tail] - potential[head]) to find the next pivot, but a
// pivot changes the potentials of only a small subtree — almost all reduced
// costs are recomputed to the same value. The DTT transform attaches a
// support thread to the node-potential array: when a potential actually
// changes, the thread recomputes the per-node minimum reduced cost for the
// affected tails only, and the main thread just scans the per-node minima.
type mcfWorkload struct{}

func init() { register(mcfWorkload{}) }

func (mcfWorkload) Name() string  { return "mcf" }
func (mcfWorkload) Suite() string { return "SPEC CPU2006 int (429.mcf)" }
func (mcfWorkload) Description() string {
	return "network simplex price updates: recompute per-node min reduced cost only for nodes whose potential changed"
}

// mcf problem dimensions.
const (
	mcfNodesBase  = 1024
	mcfOutDegree  = 8
	mcfUpdates    = 16 // potential updates attempted per pivot
	mcfArcCost    = 3  // ALU ops per reduced-cost evaluation
	mcfSelectCost = 2  // ALU ops per update-target selection
)

// mcfNet is the static network: arrays of arc endpoints and costs plus
// adjacency indexes. The static structure lives outside simulated memory —
// mcf never writes it, and the redundancy story is entirely about the
// potential and minimum arrays.
type mcfNet struct {
	nodes   int
	tail    []int
	head    []int
	cost    []int64
	outArcs [][]int // arcs with this node as tail
	inArcs  [][]int // arcs with this node as head
}

func buildMCFNet(size Size) *mcfNet {
	size = size.withDefaults()
	n := mcfNodesBase * size.Scale
	rng := NewRNG(size.Seed)
	net := &mcfNet{
		nodes:   n,
		outArcs: make([][]int, n),
		inArcs:  make([][]int, n),
	}
	for t := 0; t < n; t++ {
		for d := 0; d < mcfOutDegree; d++ {
			h := rng.Intn(n - 1)
			if h >= t {
				h++ // no self loops
			}
			a := len(net.tail)
			net.tail = append(net.tail, t)
			net.head = append(net.head, h)
			net.cost = append(net.cost, int64(rng.Intn(1000)))
			net.outArcs[t] = append(net.outArcs[t], a)
			net.inArcs[h] = append(net.inArcs[h], a)
		}
	}
	return net
}

// mcfState is the mutable simulated-memory state shared by both variants.
// pot holds node potentials; nodeMin the per-node minimum reduced cost.
type mcfState struct {
	sys     *mem.System
	net     *mcfNet
	pot     *mem.Buffer // written via Region in the DTT variant
	nodeMin *mem.Buffer
}

func word(v int64) mem.Word   { return mem.Word(uint64(v)) }
func signed(w mem.Word) int64 { return int64(w) }

// recomputeNodeMin recomputes nodeMin[t] from current potentials: the mcf
// "implicit computation" for one node.
func (st *mcfState) recomputeNodeMin(t int) {
	potT := signed(st.pot.Load(t))
	best := int64(1) << 62
	for _, a := range st.net.outArcs[t] {
		rc := st.net.cost[a] + potT - signed(st.pot.Load(st.net.head[a]))
		st.sys.Compute(mcfArcCost)
		if rc < best {
			best = rc
		}
	}
	st.nodeMin.Store(t, word(best))
}

// selectPivot scans nodeMin for the arg-minimum, mcf's pivot selection.
func (st *mcfState) selectPivot() (pivot int, min int64) {
	min = int64(1) << 62
	for t := 0; t < st.net.nodes; t++ {
		v := signed(st.nodeMin.Load(t))
		st.sys.Compute(1)
		if v < min {
			min, pivot = v, t
		}
	}
	return pivot, min
}

// mcfUpdate describes one potential update attempt. Deltas may be zero:
// those writes are silent and model mcf's redundant stores.
type mcfUpdate struct {
	node  int
	delta int64
}

// mcfUpdates derives the iteration's update set deterministically from the
// pivot, so baseline and DTT runs follow identical trajectories.
func mcfUpdateSet(iter, pivot, nodes int, sys *mem.System) []mcfUpdate {
	ups := make([]mcfUpdate, mcfUpdates)
	h := uint64(iter)*0x9e3779b97f4a7c15 + uint64(pivot)*0xbf58476d1ce4e5b9
	for j := range ups {
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		ups[j].node = int((h ^ uint64(j)) % uint64(nodes))
		ups[j].delta = int64((h>>32)%6) - 2 // in [-2, 3]
		// Force a sizeable fraction of zero deltas: mcf's price updates
		// frequently store the value already in memory.
		if (h>>48)%3 == 0 {
			ups[j].delta = 0
		}
		sys.Compute(mcfSelectCost)
	}
	return ups
}

func (mcfWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	net := buildMCFNet(size)
	st := &mcfState{
		sys:     env.Sys,
		net:     net,
		pot:     env.Sys.Alloc("mcf.pot", net.nodes),
		nodeMin: env.Sys.Alloc("mcf.nodeMin", net.nodes),
	}
	seedPotentials(st.pot, size.Seed)

	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		// The implicit computation: recompute every node's minimum
		// reduced cost, whether or not anything feeding it changed.
		for t := 0; t < net.nodes; t++ {
			st.recomputeNodeMin(t)
		}
		pivot, min := st.selectPivot()
		sum = checksum(sum, uint64(pivot))
		sum = checksum(sum, uint64(min))
		for _, up := range mcfUpdateSet(iter, pivot, net.nodes, env.Sys) {
			v := signed(st.pot.Load(up.node)) + up.delta
			st.pot.Store(up.node, word(v))
		}
	}
	// Final refresh so the printed state reflects the last updates, as the
	// DTT variant's closing barrier does.
	for t := 0; t < net.nodes; t++ {
		st.recomputeNodeMin(t)
	}
	sum = finishMCF(sum, st)
	return Result{Checksum: sum}, nil
}

func (mcfWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("mcf: DTT run without a runtime")
	}
	size = size.withDefaults()
	net := buildMCFNet(size)
	rt := env.RT
	pot := rt.NewRegion("mcf.pot", net.nodes)
	st := &mcfState{
		sys:     env.Sys,
		net:     net,
		pot:     pot.Buffer(),
		nodeMin: env.Sys.Alloc("mcf.nodeMin", net.nodes),
	}
	seedPotentials(st.pot, size.Seed)

	// The support thread: a potential changed, so recompute the minimum
	// reduced cost of every tail whose arcs see that potential.
	refresh := rt.Register("mcf.refresh", func(tg core.Trigger) {
		n := tg.Index
		st.recomputeNodeMin(n)
		for _, a := range net.inArcs[n] {
			st.recomputeNodeMin(net.tail[a])
		}
	})
	if err := rt.Attach(refresh, pot, 0, net.nodes); err != nil {
		return Result{}, err
	}

	// Initialisation pass, charged identically in both variants.
	for t := 0; t < net.nodes; t++ {
		st.recomputeNodeMin(t)
	}

	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		if iter > 0 {
			rt.Wait(refresh)
		}
		pivot, min := st.selectPivot()
		sum = checksum(sum, uint64(pivot))
		sum = checksum(sum, uint64(min))
		for _, up := range mcfUpdateSet(iter, pivot, net.nodes, env.Sys) {
			v := signed(pot.Load(up.node)) + up.delta
			pot.TStore(up.node, word(v))
		}
	}
	rt.Barrier()
	sum = finishMCF(sum, st)
	return Result{Checksum: sum, Triggers: net.nodes}, nil
}

// seedPotentials writes the deterministic initial potentials without
// generating memory events (input setup).
func seedPotentials(pot *mem.Buffer, seed uint64) {
	rng := NewRNG(seed ^ 0xabcd)
	for i := 0; i < pot.Len(); i++ {
		pot.Poke(i, word(int64(rng.Intn(500))))
	}
}

// finishMCF folds the final state into the checksum.
func finishMCF(sum uint64, st *mcfState) uint64 {
	for t := 0; t < st.net.nodes; t++ {
		sum = checksum(sum, uint64(st.pot.Peek(t)))
		sum = checksum(sum, uint64(st.nodeMin.Peek(t)))
	}
	return sum
}
