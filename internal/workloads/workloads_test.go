package workloads

import (
	"testing"

	"dtt/internal/core"
	"dtt/internal/queue"
)

// runBaseline executes w's baseline variant on a fresh system.
func runBaseline(t *testing.T, w Workload, size Size) Result {
	t.Helper()
	res, err := w.RunBaseline(NewBaselineEnv(), size)
	if err != nil {
		t.Fatalf("%s baseline: %v", w.Name(), err)
	}
	return res
}

// runDTT executes w's DTT variant on a fresh runtime with the given config
// mutation.
func runDTT(t *testing.T, w Workload, size Size, mut func(*core.Config)) Result {
	t.Helper()
	cfg := core.Config{Backend: core.BackendDeferred}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := w.RunDTT(NewDTTEnv(rt), size)
	if err != nil {
		t.Fatalf("%s DTT: %v", w.Name(), err)
	}
	return res
}

// checkEquivalence is the central workload correctness property: the DTT
// variant must compute exactly what the baseline computes, under every
// backend and policy knob.
func checkEquivalence(t *testing.T, w Workload) {
	t.Helper()
	size := Size{Scale: 1, Iters: 12, Seed: 7}
	base := runBaseline(t, w, size)
	if base.Checksum == 0 {
		t.Fatalf("%s baseline checksum is zero; fingerprint too weak", w.Name())
	}

	// Per-thread dedup is deliberately absent: squashing by thread alone
	// discards the trigger address, which is only sound for threads whose
	// work does not depend on which word fired — not these workloads.
	configs := map[string]func(*core.Config){
		"deferred":   nil,
		"immediate":  func(c *core.Config) { c.Backend = core.BackendImmediate; c.Workers = 3 },
		"tiny-queue": func(c *core.Config) { c.QueueCapacity = 2 },
		"dedup-none": func(c *core.Config) { c.Dedup = queue.DedupNone; c.QueueCapacity = 4096 },
	}
	for name, mut := range configs {
		got := runDTT(t, w, size, mut)
		if got.Checksum != base.Checksum {
			t.Errorf("%s [%s]: DTT checksum %#x != baseline %#x", w.Name(), name, got.Checksum, base.Checksum)
		}
	}
}

// checkSeedSensitivity guards against checksums that ignore the input.
func checkSeedSensitivity(t *testing.T, w Workload) {
	t.Helper()
	a := runBaseline(t, w, Size{Scale: 1, Iters: 6, Seed: 1})
	b := runBaseline(t, w, Size{Scale: 1, Iters: 6, Seed: 2})
	if a.Checksum == b.Checksum {
		t.Errorf("%s: checksum identical across seeds", w.Name())
	}
	c := runBaseline(t, w, Size{Scale: 1, Iters: 7, Seed: 1})
	if a.Checksum == c.Checksum {
		t.Errorf("%s: checksum identical across iteration counts", w.Name())
	}
}

// checkRedundancySkipped verifies the DTT variant actually skips work:
// silent tstores plus squashes must be visible in runtime stats.
func checkDTTActivity(t *testing.T, w Workload) {
	t.Helper()
	rt, err := core.New(core.Config{Backend: core.BackendDeferred})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := w.RunDTT(NewDTTEnv(rt), Size{Scale: 1, Iters: 12, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	s := rt.Stats()
	if s.TStores == 0 {
		t.Fatalf("%s: DTT variant issued no triggering stores", w.Name())
	}
	if s.Executed+s.InlineRuns == 0 {
		t.Fatalf("%s: no support-thread instances executed", w.Name())
	}
	if s.Silent == 0 {
		t.Errorf("%s: no silent tstores; the redundancy being eliminated is absent", w.Name())
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ammp", "art", "bzip2", "crafty", "equake", "gcc", "gzip", "mcf", "mesa", "parser", "twolf", "vortex", "vpr"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered workloads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered workloads = %v, want %v", got, want)
		}
	}
	for _, w := range All() {
		if w.Suite() == "" || w.Description() == "" {
			t.Errorf("%s: missing suite or description", w.Name())
		}
		if ww, ok := ByName(w.Name()); !ok || ww != w {
			t.Errorf("ByName(%s) broken", w.Name())
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Errorf("ByName(nonesuch) found something")
	}
}

func TestAllWorkloadsEquivalence(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) { checkEquivalence(t, w) })
	}
}

func TestAllWorkloadsSeedSensitivity(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) { checkSeedSensitivity(t, w) })
	}
}

func TestAllWorkloadsDTTActivity(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) { checkDTTActivity(t, w) })
	}
}

func TestDTTWithoutRuntimeFails(t *testing.T) {
	for _, w := range All() {
		if _, err := w.RunDTT(NewBaselineEnv(), DefaultSize()); err == nil {
			t.Errorf("%s: DTT run without runtime succeeded", w.Name())
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("RNG not deterministic at step %d", i)
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatalf("zero seed degenerate")
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(3).Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestSizeDefaults(t *testing.T) {
	s := Size{}.withDefaults()
	if s.Scale != 1 || s.Iters != 40 || s.Seed != 1 {
		t.Fatalf("defaults = %+v", s)
	}
	s = Size{Scale: 2, Iters: 5, Seed: 9}.withDefaults()
	if s.Scale != 2 || s.Iters != 5 || s.Seed != 9 {
		t.Fatalf("explicit size clobbered: %+v", s)
	}
}
