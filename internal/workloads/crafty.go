package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// craftyWorkload models 186.crafty's position evaluation.
//
// crafty evaluates the board after every move, recomputing per-file pawn
// structure and piece placement terms although a move disturbs at most two
// squares. The kernel keeps a 64-square board; moves write both squares
// (null moves and shuffles rewrite unchanged squares — silent); a support
// thread attached to the board refreshes the evaluation terms of the
// affected files. The search bookkeeping around each move — the dominant
// main-thread cost in crafty — is identical in both variants, so the DTT
// gain is small, as it is for crafty in the paper's control-heavy codes.
type craftyWorkload struct{}

func init() { register(craftyWorkload{}) }

func (craftyWorkload) Name() string  { return "crafty" }
func (craftyWorkload) Suite() string { return "SPEC CPU2000 int (186.crafty)" }
func (craftyWorkload) Description() string {
	return "board evaluation: refresh only the files disturbed by the last move"
}

// crafty dimensions. The board is 8x8 squares; square s is file s%8.
const (
	craftySquares   = 64
	craftyFiles     = 8
	craftyPieces    = 12   // piece kinds + empty encoded per square
	craftyTermCost  = 4    // ALU ops per square scored
	craftySearchOps = 1500 // move-generation/search bookkeeping per ply
	craftyPlies     = 48   // moves per iteration
)

type craftyState struct {
	sys      *mem.System
	board    *mem.Buffer // piece code per square
	fileEval *mem.Buffer // per-file structure score
	total    *mem.Buffer // [0] = summed evaluation
	pieceVal [craftyPieces]int64
}

// refreshFile rescores one file from its eight squares and folds the delta
// into the total evaluation.
func (st *craftyState) refreshFile(file int) {
	var score int64
	for rank := 0; rank < 8; rank++ {
		p := st.board.Load(rank*craftyFiles + file)
		score += st.pieceVal[p%craftyPieces] * int64(rank+1)
		st.sys.Compute(craftyTermCost)
	}
	old := signed(st.fileEval.Load(file))
	if score != old {
		st.fileEval.Store(file, word(score))
		st.total.Store(0, word(signed(st.total.Load(0))+score-old))
		st.sys.Compute(1)
	}
}

// ply derives one move: source and destination squares plus the piece
// codes written there. A third of the plies are null-ish moves that write
// squares back unchanged.
func craftyPly(st *craftyState, iter, p int) (from, to int, fromV, toV mem.Word) {
	h := uint64(iter)*0x9e3779b97f4a7c15 + uint64(p)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	from = int(h % craftySquares)
	to = int((h >> 12) % craftySquares)
	st.sys.Compute(craftySearchOps)
	if (h>>24)%3 == 0 {
		return from, to, st.board.Load(from), st.board.Load(to)
	}
	mover := st.board.Load(from)
	return from, to, mem.Word(0), mover
}

func newCraftyState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *craftyState {
	size = size.withDefaults()
	st := &craftyState{sys: sys}
	st.board = alloc("crafty.board", craftySquares)
	st.fileEval = alloc("crafty.fileEval", craftyFiles)
	st.total = alloc("crafty.total", 1)
	rng := NewRNG(size.Seed ^ 0xcf7)
	for i := range st.pieceVal {
		st.pieceVal[i] = int64(rng.Intn(900) - 400)
	}
	for s := 0; s < craftySquares; s++ {
		st.board.Poke(s, mem.Word(rng.Intn(craftyPieces)))
	}
	var total int64
	for f := 0; f < craftyFiles; f++ {
		var score int64
		for rank := 0; rank < 8; rank++ {
			p := st.board.Peek(rank*craftyFiles + f)
			score += st.pieceVal[p%craftyPieces] * int64(rank+1)
		}
		st.fileEval.Poke(f, word(score))
		total += score
	}
	st.total.Poke(0, word(total))
	return st
}

func craftyChecksum(sum uint64, st *craftyState) uint64 {
	sum = checksum(sum, uint64(st.total.Peek(0)))
	for f := 0; f < craftyFiles; f++ {
		sum = checksum(sum, uint64(st.fileEval.Peek(f)))
	}
	for s := 0; s < craftySquares; s++ {
		sum = checksum(sum, uint64(st.board.Peek(s)))
	}
	return sum
}

func (craftyWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newCraftyState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		for p := 0; p < craftyPlies*size.Scale; p++ {
			from, to, fromV, toV := craftyPly(st, iter, p)
			st.board.Store(from, fromV)
			st.board.Store(to, toV)
			// Full evaluation after every move, disturbed or not.
			for f := 0; f < craftyFiles; f++ {
				st.refreshFile(f)
			}
			sum = checksum(sum, uint64(st.total.Load(0)))
		}
	}
	return Result{Checksum: sum ^ craftyChecksum(0, st)}, nil
}

func (craftyWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("crafty: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var boardRegion *core.Region
	st := newCraftyState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "crafty.board" {
			boardRegion = rt.NewRegion(name, n)
			return boardRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	eval := rt.Register("crafty.eval", func(tg core.Trigger) {
		st.refreshFile(tg.Index % craftyFiles)
	})
	if err := rt.Attach(eval, boardRegion, 0, craftySquares); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		for p := 0; p < craftyPlies*size.Scale; p++ {
			from, to, fromV, toV := craftyPly(st, iter, p)
			boardRegion.TStore(from, fromV)
			boardRegion.TStore(to, toV)
			rt.Wait(eval)
			sum = checksum(sum, uint64(st.total.Load(0)))
		}
	}
	rt.Barrier()
	return Result{Checksum: sum ^ craftyChecksum(0, st), Triggers: craftySquares}, nil
}
