// Package workloads provides miniature reimplementations of the C SPEC
// benchmarks the paper evaluates. SPEC sources and inputs are licensed and
// unavailable, so each kernel reproduces the *redundancy structure* the
// paper documents for its namesake — the reason data-triggered threads help
// that program — rather than its full functionality:
//
//	mcf     network price updates touching few node potentials
//	equake  sparse matrix-vector products over slowly-changing displacements
//	art     neural-net layer sums over a sliding input window
//	vpr     incremental placement cost over per-move block positions
//	twolf   row-overlap placement cost with rarely-moving cells
//	gzip    block compression of a stream with many repeated blocks
//	bzip2   block transforms of a stream with many repeated blocks
//	parser  dictionary-derived word costs with rare dictionary updates
//	ammp    pairwise force recomputation for slowly-moving atoms
//	mesa    vertex transforms with sparse per-frame vertex changes
//
// Every workload has a baseline variant (recompute everything, the original
// program) and a DTT variant (triggering stores + support threads). Both
// must produce bit-identical checksums; all arithmetic is integer/fixed-
// point so incremental and full recomputation agree exactly.
package workloads

import (
	"fmt"
	"sort"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// Size scales a workload. Interpretation is per-workload, but Scale=1 is
// always the experiments' default and larger scales grow the data
// superlinearly in work.
type Size struct {
	// Scale multiplies the data dimensions.
	Scale int
	// Iters is the number of outer iterations (time steps, moves, rounds).
	Iters int
	// Seed selects the deterministic input instance.
	Seed uint64
}

// DefaultSize is the configuration used by all experiments.
func DefaultSize() Size { return Size{Scale: 1, Iters: 40, Seed: 1} }

func (s Size) withDefaults() Size {
	if s.Scale <= 0 {
		s.Scale = 1
	}
	if s.Iters <= 0 {
		s.Iters = 40
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Env is the substrate a run executes against. Baseline runs need only Sys;
// DTT runs also need RT (whose System must be Sys).
type Env struct {
	Sys *mem.System
	RT  *core.Runtime
}

// NewBaselineEnv returns an Env for a baseline run on a fresh system.
func NewBaselineEnv() *Env { return &Env{Sys: mem.NewSystem()} }

// NewDTTEnv wraps a runtime in an Env.
func NewDTTEnv(rt *core.Runtime) *Env { return &Env{Sys: rt.System(), RT: rt} }

// Result is a run's output fingerprint and work accounting. Baseline and
// DTT runs of the same workload and size must produce equal Checksums.
type Result struct {
	// Checksum fingerprints the program output.
	Checksum uint64
	// Triggers is the number of trigger words the DTT variant attaches
	// (0 for baseline runs); it feeds the T3 characterisation table.
	Triggers int
}

// Workload is one mini-SPEC benchmark.
type Workload interface {
	// Name is the SPEC namesake, e.g. "mcf".
	Name() string
	// Suite names the SPEC suite and class of the namesake.
	Suite() string
	// Description states the redundancy mechanism being modelled.
	Description() string
	// RunBaseline executes the recompute-everything variant.
	RunBaseline(env *Env, size Size) (Result, error)
	// RunDTT executes the data-triggered variant. The caller drives
	// synchronisation policy through the runtime it supplies in env.
	RunDTT(env *Env, size Size) (Result, error)
}

var registry = map[string]Workload{}

// register adds w at package init time.
func register(w Workload) {
	if _, dup := registry[w.Name()]; dup {
		panic(fmt.Sprintf("workloads: duplicate workload %q", w.Name()))
	}
	registry[w.Name()] = w
}

// All returns every registered workload sorted by name.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names returns the sorted workload names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// checksum mixes a value into a running fingerprint (FNV-1a-style).
func checksum(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}
