package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// vprWorkload models 175.vpr's placement phase.
//
// vpr's annealer moves one block at a time but the reference cost pass
// recomputes the bounding box of every net, although only the nets
// containing the moved block can change. The DTT transform stores packed
// block positions through triggering stores; a support thread recomputes
// the bounding-box cost of exactly the moved block's nets and folds the
// delta into the running total. Candidate evaluation — the annealer's
// dominant fixed cost — stays on the main thread in both variants.
type vprWorkload struct{}

func init() { register(vprWorkload{}) }

func (vprWorkload) Name() string  { return "vpr" }
func (vprWorkload) Suite() string { return "SPEC CPU2000 int (175.vpr)" }
func (vprWorkload) Description() string {
	return "placement cost: recompute net bounding boxes only for nets of the moved block"
}

// vpr dimensions.
const (
	vprBlocksBase = 256
	vprNetsBase   = 512
	vprPinsPerNet = 4
	vprGrid       = 1 << 10 // coordinate range per axis
	vprBBoxCost   = 3       // ALU ops per pin visit
	vprCandidates = 128     // candidate positions evaluated per move
)

type vprNetlist struct {
	blocks, nets int
	netPins      [][]int // nets -> member blocks
	blockNets    [][]int // blocks -> containing nets
}

func buildVPRNetlist(size Size) *vprNetlist {
	size = size.withDefaults()
	nl := &vprNetlist{blocks: vprBlocksBase * size.Scale, nets: vprNetsBase * size.Scale}
	rng := NewRNG(size.Seed ^ 0x19f)
	nl.netPins = make([][]int, nl.nets)
	nl.blockNets = make([][]int, nl.blocks)
	for n := range nl.netPins {
		seen := map[int]bool{}
		for p := 0; p < vprPinsPerNet; p++ {
			b := rng.Intn(nl.blocks)
			for seen[b] {
				b = rng.Intn(nl.blocks)
			}
			seen[b] = true
			nl.netPins[n] = append(nl.netPins[n], b)
			nl.blockNets[b] = append(nl.blockNets[b], n)
		}
	}
	return nl
}

// packXY packs a grid position into one trigger word, so one move is one
// triggering store rather than two half-triggers.
func packXY(x, y int) mem.Word { return mem.Word(uint64(x)<<20 | uint64(y)) }

func unpackXY(w mem.Word) (x, y int) { return int(w >> 20), int(w & (1<<20 - 1)) }

type vprState struct {
	sys     *mem.System
	nl      *vprNetlist
	pos     *mem.Buffer // packed block positions
	netCost *mem.Buffer // per-net half-perimeter wirelength
	total   *mem.Buffer // [0] = sum of net costs
}

// netBBox computes the half-perimeter wirelength of net n from current
// positions.
func (st *vprState) netBBox(n int) int64 {
	minX, minY := vprGrid, vprGrid
	maxX, maxY := 0, 0
	for _, b := range st.nl.netPins[n] {
		x, y := unpackXY(st.pos.Load(b))
		st.sys.Compute(vprBBoxCost)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return int64(maxX - minX + maxY - minY)
}

// refreshNet recomputes net n's cost and folds the delta into the total.
func (st *vprState) refreshNet(n int) {
	old := signed(st.netCost.Load(n))
	nw := st.netBBox(n)
	if nw != old {
		st.netCost.Store(n, word(nw))
		st.total.Store(0, word(signed(st.total.Load(0))+nw-old))
		st.sys.Compute(1)
	}
}

// evaluateCandidates is the annealer's main-thread work: score candidate
// positions for the next block against the nets it belongs to, without
// committing anything. Identical in both variants.
func (st *vprState) evaluateCandidates(iter, block int) (bestX, bestY int) {
	h := uint64(iter)*0x9e3779b97f4a7c15 + uint64(block)
	bestScore := int64(1) << 62
	for c := 0; c < vprCandidates; c++ {
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		x := int(h % vprGrid)
		y := int((h >> 24) % vprGrid)
		var score int64
		for _, n := range st.nl.blockNets[block] {
			// Hypothetical cost: current bbox stretched to include the
			// candidate point.
			score += st.netBBox(n) + int64((x+y)%7)
			st.sys.Compute(2)
		}
		if score < bestScore {
			bestScore, bestX, bestY = score, x, y
		}
	}
	// A slice of moves is rejected: the block is "moved" to its current
	// position and the position store is silent.
	if h%4 == 0 {
		x, y := unpackXY(st.pos.Load(block))
		return x, y
	}
	return bestX, bestY
}

func newVPRState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *vprState {
	nl := buildVPRNetlist(size)
	st := &vprState{
		sys:     sys,
		nl:      nl,
		pos:     alloc("vpr.pos", nl.blocks),
		netCost: alloc("vpr.netCost", nl.nets),
		total:   alloc("vpr.total", 1),
	}
	rng := NewRNG(size.Seed ^ 0x33d)
	for b := 0; b < nl.blocks; b++ {
		st.pos.Poke(b, packXY(rng.Intn(vprGrid), rng.Intn(vprGrid)))
	}
	var total int64
	for n := 0; n < nl.nets; n++ {
		c := st.netBBox(n)
		st.netCost.Poke(n, word(c))
		total += c
	}
	st.total.Poke(0, word(total))
	return st
}

func vprChecksum(sum uint64, st *vprState) uint64 {
	sum = checksum(sum, uint64(st.total.Peek(0)))
	for n := 0; n < st.nl.nets; n++ {
		sum = checksum(sum, uint64(st.netCost.Peek(n)))
	}
	for b := 0; b < st.nl.blocks; b++ {
		sum = checksum(sum, uint64(st.pos.Peek(b)))
	}
	return sum
}

func (vprWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newVPRState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		// Reference cost pass: recompute every net.
		for n := 0; n < st.nl.nets; n++ {
			st.refreshNet(n)
		}
		sum = checksum(sum, uint64(st.total.Load(0)))
		block := int(uint64(iter)*2654435761) % st.nl.blocks
		x, y := st.evaluateCandidates(iter, block)
		st.pos.Store(block, packXY(x, y))
	}
	for n := 0; n < st.nl.nets; n++ {
		st.refreshNet(n)
	}
	return Result{Checksum: vprChecksum(sum, st)}, nil
}

func (vprWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("vpr: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var posRegion *core.Region
	st := newVPRState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "vpr.pos" {
			posRegion = rt.NewRegion(name, n)
			return posRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	refresh := rt.Register("vpr.refresh", func(tg core.Trigger) {
		for _, n := range st.nl.blockNets[tg.Index] {
			st.refreshNet(n)
		}
	})
	if err := rt.Attach(refresh, posRegion, 0, st.nl.blocks); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		rt.Wait(refresh)
		sum = checksum(sum, uint64(st.total.Load(0)))
		block := int(uint64(iter)*2654435761) % st.nl.blocks
		x, y := st.evaluateCandidates(iter, block)
		posRegion.TStore(block, packXY(x, y))
	}
	rt.Barrier()
	return Result{Checksum: vprChecksum(sum, st), Triggers: st.nl.blocks}, nil
}
