package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// bzip2Workload models 256.bzip2.
//
// Like gzip, SPEC runs bzip2 over the same input repeatedly; the dominant
// cost is the per-block Burrows-Wheeler-style sort. The kernel streams
// blocks round after round with a high mutation rate (bzip2's inputs reuse
// less across rounds than gzip's, so its DTT gain is smaller); a support
// thread redoes the block transform only when the block's signature word
// changes.
type bzip2Workload struct{}

func init() { register(bzip2Workload{}) }

func (bzip2Workload) Name() string  { return "bzip2" }
func (bzip2Workload) Suite() string { return "SPEC CPU2000 int (256.bzip2)" }
func (bzip2Workload) Description() string {
	return "block transform: redo the BWT-style sort only for blocks whose signature changed"
}

// bzip2 dimensions.
const (
	bzip2BlocksBase = 32
	bzip2BlockWords = 64
	bzip2Buckets    = 16
	bzip2RankCost   = 4 // ALU ops per ranking step
	bzip2MutateFrac = 4 // (frac-1)/frac of the blocks mutate per round: high churn
)

type bzip2State struct {
	sys    *mem.System
	seed   uint64
	blocks int
	data   *mem.Buffer
	sig    *mem.Buffer
	rank   *mem.Buffer // per-block transform fingerprint
	total  *mem.Buffer
}

func (st *bzip2State) writeRound(round, b int) {
	h := uint64(b)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9
	h ^= h >> 33
	mutated := h%bzip2MutateFrac != 0
	base := b * bzip2BlockWords
	for i := 0; i < bzip2BlockWords; i++ {
		v := uint64(b)*2654435761 + uint64(i)*40503 + st.seed*0x85ebca6b
		if mutated {
			v ^= uint64(round) * 65599 * uint64(1+i%3)
		}
		st.data.Store(base+i, v%bzip2Buckets)
		st.sys.Compute(1)
	}
}

func (st *bzip2State) signature(b int) mem.Word {
	base := b * bzip2BlockWords
	h := uint64(0x9dc5)
	for i := 0; i < bzip2BlockWords; i++ {
		h = (h ^ uint64(st.data.Load(base+i))) * 0x100000001b3
		st.sys.Compute(1)
	}
	return mem.Word(h)
}

// transform models the block sort: a counting sort into buckets followed by
// a rank scan, producing a fingerprint of the sorted order.
func (st *bzip2State) transform(b int) {
	base := b * bzip2BlockWords
	var hist [bzip2Buckets]int64
	for i := 0; i < bzip2BlockWords; i++ {
		hist[st.data.Load(base+i)%bzip2Buckets]++
		st.sys.Compute(2)
	}
	// Prefix sums give each symbol its sorted position...
	var start [bzip2Buckets]int64
	var acc int64
	for s := 0; s < bzip2Buckets; s++ {
		start[s] = acc
		acc += hist[s]
		st.sys.Compute(1)
	}
	// ...and the rank scan walks positions in sorted order, as the BWT's
	// suffix ranking does, mixing them into a fingerprint.
	var fp int64
	for i := 0; i < bzip2BlockWords; i++ {
		sym := st.data.Load(base+i) % bzip2Buckets
		pos := start[sym]
		start[sym]++
		fp = fp*31 + pos*int64(sym+1) + int64(i%7)
		st.sys.Compute(bzip2RankCost)
	}
	old := signed(st.rank.Load(b))
	if fp != old {
		st.rank.Store(b, word(fp))
		st.total.Store(0, word(signed(st.total.Load(0))+fp-old))
	}
}

func newBzip2State(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *bzip2State {
	size = size.withDefaults()
	st := &bzip2State{sys: sys, seed: size.Seed, blocks: bzip2BlocksBase * size.Scale}
	st.data = alloc("bzip2.data", st.blocks*bzip2BlockWords)
	st.sig = alloc("bzip2.sig", st.blocks)
	st.rank = alloc("bzip2.rank", st.blocks)
	st.total = alloc("bzip2.total", 1)
	return st
}

func bzip2Checksum(sum uint64, st *bzip2State) uint64 {
	sum = checksum(sum, uint64(st.total.Peek(0)))
	for b := 0; b < st.blocks; b++ {
		sum = checksum(sum, uint64(st.rank.Peek(b)))
	}
	return sum
}

func (bzip2Workload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newBzip2State(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		for b := 0; b < st.blocks; b++ {
			st.writeRound(round, b)
			st.transform(b)
		}
		sum = checksum(sum, uint64(st.total.Load(0)))
	}
	return Result{Checksum: sum}, nil
}

func (bzip2Workload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("bzip2: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var sigRegion *core.Region
	st := newBzip2State(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "bzip2.sig" {
			sigRegion = rt.NewRegion(name, n)
			return sigRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	sort := rt.Register("bzip2.transform", func(tg core.Trigger) {
		st.transform(tg.Index)
	})
	if err := rt.Attach(sort, sigRegion, 0, st.blocks); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		for b := 0; b < st.blocks; b++ {
			st.writeRound(round, b)
			sigRegion.TStore(b, st.signature(b))
		}
		rt.Wait(sort)
		sum = checksum(sum, uint64(st.total.Load(0)))
	}
	rt.Barrier()
	return Result{Checksum: sum, Triggers: st.blocks}, nil
}
