package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// equakeWorkload models 183.equake's sparse matrix-vector product (smvp).
//
// equake's time loop multiplies a fixed stiffness matrix by a displacement
// vector every step, but between steps only the entries under the seismic
// wavefront change — the program rewrites the whole vector and recomputes
// every product anyway. The DTT transform stores displacements through
// triggering stores; a support thread recomputes only the products of a
// changed column and folds the delta into the row sums.
type equakeWorkload struct{}

func init() { register(equakeWorkload{}) }

func (equakeWorkload) Name() string  { return "equake" }
func (equakeWorkload) Suite() string { return "SPEC CPU2000 fp (183.equake)" }
func (equakeWorkload) Description() string {
	return "sparse matrix-vector product: recompute products only for displacement entries the wavefront changed"
}

// equake problem dimensions. Values are fixed-point integers so the
// incremental and full recomputations agree exactly.
const (
	equakeNBase    = 768
	equakeColNNZ   = 12
	equakeWaveFrac = 2 // wavefront covers n/equakeWaveFrac entries
	equakeMulCost  = 2 // ALU ops per product
	equakeSumCost  = 1 // ALU ops per row-sum accumulation
)

type equakeMatrix struct {
	n int
	// Column-major sparse structure: colRow[j] lists the rows with a
	// non-zero in column j; colVal the corresponding coefficients;
	// colK[j] the index of column j's first product slot.
	colRow [][]int
	colVal [][]int64
	colK   []int
	nnz    int
}

func buildEquakeMatrix(size Size) *equakeMatrix {
	size = size.withDefaults()
	n := equakeNBase * size.Scale
	rng := NewRNG(size.Seed ^ 0xe9)
	m := &equakeMatrix{n: n, colRow: make([][]int, n), colVal: make([][]int64, n), colK: make([]int, n)}
	k := 0
	for j := 0; j < n; j++ {
		m.colK[j] = k
		seen := map[int]bool{}
		for c := 0; c < equakeColNNZ; c++ {
			r := rng.Intn(n)
			for seen[r] {
				r = rng.Intn(n)
			}
			seen[r] = true
			m.colRow[j] = append(m.colRow[j], r)
			m.colVal[j] = append(m.colVal[j], int64(rng.Intn(9)+1))
			k++
		}
	}
	m.nnz = k
	return m
}

// equakeDisp returns the displacement value of entry j at a time step:
// a base profile plus a wavefront term that is non-zero only inside the
// moving window.
func equakeDisp(m *equakeMatrix, base []int64, step, j int) int64 {
	width := m.n / equakeWaveFrac
	lo := (step * 17) % m.n
	d := base[j]
	off := j - lo
	if off < 0 {
		off += m.n
	}
	if off < width {
		d += int64((step+1)*(off%7) + off%3)
	}
	return d
}

type equakeState struct {
	sys  *mem.System
	m    *equakeMatrix
	disp *mem.Buffer
	prod *mem.Buffer
	out  *mem.Buffer
	base []int64
}

// rebuildColumn recomputes the products of column j from the current
// displacement and folds the deltas into the row sums. It is the support
// thread's body and also the building block of the full rebuild.
func (st *equakeState) rebuildColumn(j int) {
	d := signed(st.disp.Load(j))
	k := st.m.colK[j]
	for c, r := range st.m.colRow[j] {
		old := signed(st.prod.Load(k + c))
		nw := st.m.colVal[j][c] * d
		st.sys.Compute(equakeMulCost)
		if nw != old {
			st.prod.Store(k+c, word(nw))
			st.out.Store(r, word(signed(st.out.Load(r))+nw-old))
			st.sys.Compute(equakeSumCost)
		}
	}
}

// consume folds the step's row sums into the running checksum: the part of
// the program that uses the smvp result, identical in both variants.
func (st *equakeState) consume(sum uint64) uint64 {
	var total int64
	for i := 0; i < st.m.n; i++ {
		total += signed(st.out.Load(i))
		st.sys.Compute(1)
	}
	return checksum(sum, uint64(total))
}

func newEquakeState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *equakeState {
	m := buildEquakeMatrix(size)
	st := &equakeState{
		sys:  sys,
		m:    m,
		disp: alloc("equake.disp", m.n),
		prod: alloc("equake.prod", m.nnz),
		out:  alloc("equake.out", m.n),
		base: make([]int64, m.n),
	}
	rng := NewRNG(size.Seed ^ 0x7a7a)
	for j := 0; j < m.n; j++ {
		st.base[j] = int64(rng.Intn(100))
		st.disp.Poke(j, word(equakeDisp(m, st.base, 0, j)))
	}
	// Initial full build of products and row sums (prod/out start zero).
	for j := 0; j < m.n; j++ {
		st.rebuildColumn(j)
	}
	return st
}

func (equakeWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newEquakeState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for step := 1; step <= size.Iters; step++ {
		// Write the whole displacement vector, as equake does...
		for j := 0; j < st.m.n; j++ {
			st.disp.Store(j, word(equakeDisp(st.m, st.base, step, j)))
			st.sys.Compute(2)
		}
		// ...and recompute every product, changed or not.
		for j := 0; j < st.m.n; j++ {
			st.rebuildColumn(j)
		}
		sum = st.consume(sum)
	}
	return Result{Checksum: sum}, nil
}

func (equakeWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("equake: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	// Allocate disp as a region and the rest as plain buffers, preserving
	// the baseline's allocation order so addresses line up.
	var dispRegion *core.Region
	st := newEquakeState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "equake.disp" {
			dispRegion = rt.NewRegion(name, n)
			return dispRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	smvp := rt.Register("equake.smvp", func(tg core.Trigger) {
		st.rebuildColumn(tg.Index)
	})
	if err := rt.Attach(smvp, dispRegion, 0, st.m.n); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	// One reusable span for the whole-vector write: the batched triggering
	// store performs the same word-at-a-time comparison as the scalar loop
	// (same silent/changed decisions, same per-word tstore accounting) but
	// amortizes snapshotting and shard locking over the vector.
	span := make([]mem.Word, st.m.n)
	for step := 1; step <= size.Iters; step++ {
		// Same whole-vector write; the triggering store detects that most
		// entries did not change and fires nothing for them.
		for j := 0; j < st.m.n; j++ {
			span[j] = word(equakeDisp(st.m, st.base, step, j))
			st.sys.Compute(2)
		}
		dispRegion.TStoreBatch(0, span)
		rt.Wait(smvp)
		sum = st.consume(sum)
	}
	rt.Barrier()
	return Result{Checksum: sum, Triggers: st.m.n}, nil
}
