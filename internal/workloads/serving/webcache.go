package serving

import (
	"fmt"

	"dtt/internal/mem"
	"dtt/internal/sched"
	"dtt/internal/serve"
)

// webcache is cache invalidation as a serving workload: the origin
// (driver) writes batches of fresh values through TSTORE_BATCH, the
// support thread turns every value-changing word into a CHANGE_NOTIFY,
// and the client keeps a local cache coherent purely from the
// invalidation stream. A shed notification would leave the cache stale
// forever if it were silent — the in-band gap count on the next notify
// is what makes the staleness bounded: the client sees the jump, does
// one READ of the region, and is coherent again.
type webcache struct{}

func (webcache) Name() string { return "webcache" }

func (webcache) Description() string {
	return "TStoreBatch invalidations keep a client cache coherent; notify gaps recover via READ"
}

func (webcache) Run(cfg Config) (Report, error) {
	e, err := newEnv("webcache", cfg)
	if err != nil {
		return Report{}, err
	}
	cfg = e.cfg
	cs, err := serve.Dial(e.addr)
	if err != nil {
		rep, _ := e.finish()
		return rep, err
	}
	defer cs.Close()
	h, err := cs.Attach("cache", cfg.Keys, 0, cfg.Keys)
	if err == nil {
		err = cs.Subscribe(h)
	}
	if err != nil {
		rep, _ := e.finish()
		return rep, err
	}

	cache := make([]mem.Word, cfg.Keys)
	apply := func(n serve.Notify) { cache[n.Index] = n.Value }
	onGap := func() error {
		ws, err := cs.Read(h, 0, cfg.Keys)
		if err != nil {
			return err
		}
		copy(cache, ws)
		return nil
	}

	src := sched.New(cfg.Seed ^ 0xcac4e)
	batch := make([]mem.Word, cfg.BatchWords)
	err = e.runOpenLoop(func(scheduledAt int64, k int) error {
		lo := int(src.Uint64() % uint64(cfg.Keys-cfg.BatchWords+1))
		for i := range batch {
			// Monotone per-arrival values: every store changes its word,
			// so every word in the batch produces an invalidation.
			batch[i] = mem.Word(uint64(k+1)*0x9e3779b97f4a7c15 + uint64(lo+i))
		}
		if _, err := cs.Batch(h, lo, batch); err != nil {
			return err
		}
		if err := cs.Wait(h); err != nil {
			return err
		}
		if err := e.drain(cs, apply, onGap); err != nil {
			return err
		}
		e.observeResult(scheduledAt)
		e.rep.Completed++
		return nil
	})
	if err == nil {
		err = cs.Barrier()
	}
	if err == nil {
		err = e.drain(cs, apply, onGap)
	}
	if err != nil {
		rep, _ := e.finish()
		return rep, err
	}

	truth, err := cs.Read(h, 0, cfg.Keys)
	if err != nil {
		rep, _ := e.finish()
		return rep, fmt.Errorf("serving: webcache final read: %w", err)
	}
	for i, w := range truth {
		if cache[i] != w {
			e.rep.Stale++
		}
	}
	return e.finish()
}
