package serving

import (
	"fmt"
	"math"

	"dtt/internal/mem"
	"dtt/internal/sched"
	"dtt/internal/serve"
)

// leaderboard is a live scoreboard on the monotone folds: scores stream
// in through TUPDATE and the region keeps per-key watermarks — the high
// half under UpdMax, the low half under UpdMin (seeded to MaxUint64 so
// the first score always lands). The fold is where the paper's
// redundancy elimination shows as a serving property: a score that does
// not move a watermark merges silently, fires no trigger and costs no
// notify, so the notification stream carries exactly the record-breaking
// updates a scoreboard has to display.
type leaderboard struct{}

func (leaderboard) Name() string { return "leaderboard" }

func (leaderboard) Description() string {
	return "TUpdateBatch(UpdMax/UpdMin) watermarks; only record-breaking scores notify"
}

func (leaderboard) Run(cfg Config) (Report, error) {
	e, err := newEnv("leaderboard", cfg)
	if err != nil {
		return Report{}, err
	}
	cfg = e.cfg
	cs, err := serve.Dial(e.addr)
	if err != nil {
		rep, _ := e.finish()
		return rep, err
	}
	defer cs.Close()
	fail := func(err error) (Report, error) {
		rep, _ := e.finish()
		return rep, err
	}

	// Words [0, Keys) are UpdMax highs; [Keys, 2*Keys) are UpdMin lows.
	words := 2 * cfg.Keys
	h, err := cs.Attach("board", words, 0, words)
	if err != nil {
		return fail(err)
	}
	// Seed the low half to MaxUint64 before subscribing, so the seeding
	// stores do not count as scoreboard traffic.
	seed := make([]mem.Word, cfg.Keys)
	for i := range seed {
		seed[i] = mem.Word(math.MaxUint64)
	}
	if _, err := cs.Batch(h, cfg.Keys, seed); err != nil {
		return fail(err)
	}
	if err := cs.Wait(h); err != nil {
		return fail(err)
	}
	if err := cs.Subscribe(h); err != nil {
		return fail(err)
	}

	hi := make([]mem.Word, cfg.Keys)
	lo := make([]mem.Word, cfg.Keys)
	for i := range lo {
		lo[i] = mem.Word(math.MaxUint64)
	}
	apply := func(n serve.Notify) {
		if n.Index < cfg.Keys {
			hi[n.Index] = n.Value
		} else {
			lo[n.Index-cfg.Keys] = n.Value
		}
	}
	onGap := func() error {
		ws, err := cs.Read(h, 0, words)
		if err != nil {
			return err
		}
		copy(hi, ws[:cfg.Keys])
		copy(lo, ws[cfg.Keys:])
		return nil
	}

	src := sched.New(cfg.Seed ^ 0x1eadb0a4d)
	scores := make([]mem.Word, cfg.BatchWords)
	err = e.runOpenLoop(func(scheduledAt int64, k int) error {
		pos := int(src.Uint64() % uint64(cfg.Keys-cfg.BatchWords+1))
		for i := range scores {
			scores[i] = mem.Word(src.Uint64())
		}
		if _, err := cs.Update(h, pos, mem.UpdMax, scores); err != nil {
			return err
		}
		if _, err := cs.Update(h, cfg.Keys+pos, mem.UpdMin, scores); err != nil {
			return err
		}
		if err := cs.Wait(h); err != nil {
			return err
		}
		if err := e.drain(cs, apply, onGap); err != nil {
			return err
		}
		e.observeResult(scheduledAt)
		e.rep.Completed++
		return nil
	})
	if err == nil {
		err = cs.Barrier()
	}
	if err == nil {
		err = e.drain(cs, apply, onGap)
	}
	if err != nil {
		return fail(err)
	}

	truth, err := cs.Read(h, 0, words)
	if err != nil {
		return fail(fmt.Errorf("serving: leaderboard final read: %w", err))
	}
	for i := 0; i < cfg.Keys; i++ {
		if hi[i] != truth[i] {
			e.rep.Stale++
		}
		if lo[i] != truth[cfg.Keys+i] {
			e.rep.Stale++
		}
	}
	return e.finish()
}
