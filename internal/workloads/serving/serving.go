// Package serving is the serving-workload suite: traffic-shaped
// scenarios driven end to end over the network trigger plane
// (internal/serve) by the open-loop load generator (internal/loadgen),
// reporting tail latency the way a serving system is judged — p50/p99/
// p999 from histograms, under Poisson offered load, with coordinated
// omission measured rather than hidden.
//
// The 12 SPEC-shaped kernels reproduce the paper's redundancy structure;
// none of them look like traffic. Each scenario here is a serving idiom
// built on the triggering-store planes:
//
//	webcache     TStoreBatch writes -> CHANGE_NOTIFY invalidations keep a
//	             client cache fresh; notify gaps (the PR's headline
//	             bugfix) are detected in-band and recovered via READ, so
//	             staleness is bounded instead of forever
//	matview      TUpdateBatch(UpdAdd) deltas -> merge-time triggers
//	             maintain a materialized running aggregate at the client
//	pubsub       one publisher fans a publish out to N subscriber
//	             sessions; the tail of delivery latency is the product
//	leaderboard  TUpdateBatch(UpdMax/UpdMin) score folds; the view is the
//	             high/low watermarks, silent when a score does not move them
//
// Every scenario runs against a real loopback TCP server, asserts the
// dispatch-plane counter identity and the notify-gap accounting identity
// when it finishes, and reports two latencies per request: trigger->
// dispatch (server-side histogram, where the paper's mechanism lives)
// and trigger->result (client-observed from the SCHEDULED arrival
// instant, so schedule slip counts against the tail).
package serving

import (
	"fmt"
	"io"
	"time"

	"dtt/internal/core"
	"dtt/internal/loadgen"
	"dtt/internal/serve"
	"dtt/internal/telemetry"
)

// Config sizes one scenario run. The zero value is not runnable; use
// withDefaults (Run applies it).
type Config struct {
	// Rate is the offered load in arrivals per second.
	Rate float64
	// Duration bounds the open-loop run.
	Duration time.Duration
	// Seed determines the arrival schedule and every random choice the
	// driver makes; same seed, same run.
	Seed uint64
	// Keys is the scenario's key-space size in words.
	Keys int
	// BatchWords is the words carried per arrival.
	BatchWords int
	// Sessions is the fan-out width (pubsub subscribers).
	Sessions int
	// MailboxCap overrides the server's notify mailbox bound (0 = server
	// default). Smoke and gap tests shrink it to force shedding.
	MailboxCap int
	// Workers and Shards configure the runtime's dispatch plane.
	Workers, Shards int
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 2000
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Keys <= 0 {
		c.Keys = 256
	}
	if c.BatchWords <= 0 {
		c.BatchWords = 16
	}
	if c.BatchWords > c.Keys {
		c.BatchWords = c.Keys
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	return c
}

// LatencySummary is the quantile triple of one latency distribution,
// extracted from a histogram snapshot (linear interpolation within
// buckets, open top bucket clamped to its lower bound).
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ns"`
	P99   float64 `json:"p99_ns"`
	P999  float64 `json:"p999_ns"`
}

func summarize(s telemetry.HistogramSnapshot) LatencySummary {
	return LatencySummary{
		Count: s.Count(),
		P50:   s.Quantile(0.50),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	}
}

// Report is one scenario run's result.
type Report struct {
	Scenario string  `json:"scenario"`
	Rate     float64 `json:"offered_rate_per_sec"`
	Seconds  float64 `json:"duration_sec"`
	// Offered counts scheduled arrivals issued; Completed counts the
	// operations that finished (for pubsub, one per subscriber
	// delivery).
	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	// Late/LateMaxNs account open-loop schedule slip: arrivals issued
	// after their scheduled instant (coordinated omission, measured).
	Late      int64 `json:"late_arrivals"`
	LateMaxNs int64 `json:"late_max_ns"`
	// Notifies is the CHANGE_NOTIFY volume the run consumed; Gaps is the
	// notifications shed at the mailbox cap as observed IN-BAND by the
	// client; Recoveries counts READ re-reads triggered by those gaps.
	// Gaps always equals the server's NotifyDropped counter (asserted at
	// finish) — that is the bugfix's accounting identity.
	Notifies   int64 `json:"notifies"`
	Gaps       int64 `json:"gaps"`
	Recoveries int64 `json:"recoveries"`
	// Stale counts end-of-run divergences between the client's derived
	// view and the authoritative region. With gap recovery it must be 0.
	Stale int64 `json:"stale"`
	// Dispatch is server-side trigger->dispatch latency (the dispatch
	// plane's own histogram, deltas over this run only). Result is
	// client-observed trigger->result latency from the scheduled arrival
	// instant.
	Dispatch LatencySummary `json:"trigger_to_dispatch"`
	Result   LatencySummary `json:"trigger_to_result"`
}

// Scenario is one serving workload.
type Scenario interface {
	Name() string
	Description() string
	Run(cfg Config) (Report, error)
}

// All returns the suite in reporting order.
func All() []Scenario {
	return []Scenario{webcache{}, matview{}, pubsub{}, leaderboard{}}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// env is the shared per-run substrate: an in-process runtime, a loopback
// server over it, the client-side result histogram and the dispatch
// histogram baseline to delta against.
type env struct {
	cfg        Config
	rt         *core.Runtime
	srv        *serve.Server
	addr       string
	resultHist *telemetry.Histogram
	dispatch0  telemetry.HistogramSnapshot
	rep        Report
}

const dispatchHistName = "dtt_trigger_dispatch_latency_ns"

func dispatchSnap(rt *core.Runtime) (telemetry.HistogramSnapshot, error) {
	for _, h := range rt.TelemetrySnapshot().Histograms {
		if h.Name == dispatchHistName {
			return h, nil
		}
	}
	return telemetry.HistogramSnapshot{}, fmt.Errorf("serving: runtime exports no %s histogram", dispatchHistName)
}

// newEnv boots the loopback plane for one scenario run.
func newEnv(name string, cfg Config) (*env, error) {
	cfg = cfg.withDefaults()
	rt, err := core.New(core.Config{
		Backend:   core.BackendImmediate,
		Workers:   cfg.Workers,
		Shards:    cfg.Shards,
		Telemetry: true,
	})
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(rt, serve.Options{MailboxCap: cfg.MailboxCap})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, err
	}
	d0, err := dispatchSnap(rt)
	if err != nil {
		srv.Close()
		rt.Close()
		return nil, err
	}
	return &env{
		cfg:        cfg,
		rt:         rt,
		srv:        srv,
		addr:       addr,
		resultHist: telemetry.NewHistogram(telemetry.LatencyBounds),
		dispatch0:  d0,
		rep:        Report{Scenario: name, Rate: cfg.Rate, Seconds: cfg.Duration.Seconds()},
	}, nil
}

// observeResult records one completed operation against its scheduled
// arrival instant on the telemetry clock.
func (e *env) observeResult(scheduledAt int64) {
	e.resultHist.Observe(telemetry.Now() - scheduledAt)
}

// finish tears the plane down, extracts the run's latency quantiles and
// asserts the accounting identities every scenario must uphold:
//
//	Fired = Enqueued + Squashed + Overflowed   (dispatch plane)
//	client in-band gap count = server NotifyDropped  (the bugfix)
func (e *env) finish() (Report, error) {
	d1, err := dispatchSnap(e.rt)
	if err == nil {
		e.rep.Dispatch = summarize(d1.Sub(e.dispatch0))
	}
	e.rep.Result = summarize(e.resultHist.Snapshot("trigger_to_result_ns", ""))
	c := e.srv.Counters()
	s := e.rt.Stats()
	closeErr := e.srv.Close()
	e.rt.Close()
	if err != nil {
		return e.rep, err
	}
	if closeErr != nil {
		return e.rep, fmt.Errorf("serving: server close: %w", closeErr)
	}
	if s.Fired != s.Enqueued+s.Squashed+s.Overflowed {
		return e.rep, fmt.Errorf("serving: %s broke the dispatch identity: Fired %d != Enqueued %d + Squashed %d + Overflowed %d",
			e.rep.Scenario, s.Fired, s.Enqueued, s.Squashed, s.Overflowed)
	}
	if e.rep.Gaps != c.NotifyDropped {
		return e.rep, fmt.Errorf("serving: %s has unexplained notify gaps: client observed %d in-band, server shed %d",
			e.rep.Scenario, e.rep.Gaps, c.NotifyDropped)
	}
	return e.rep, nil
}

// drain folds a session's buffered notifications into the report and the
// caller's view via apply, then checks the in-band gap signal. A nonzero
// gap calls onGap (the scenario's READ re-read) and counts it.
func (e *env) drain(cs *serve.Session, apply func(serve.Notify), onGap func() error) error {
	for _, n := range cs.Notifies() {
		e.rep.Notifies++
		if apply != nil {
			apply(n)
		}
	}
	if g := cs.TakeGap(); g > 0 {
		e.rep.Gaps += int64(g)
		if onGap != nil {
			e.rep.Recoveries++
			if err := onGap(); err != nil {
				return fmt.Errorf("serving: gap recovery: %w", err)
			}
		}
	}
	return nil
}

// runOpenLoop issues fn once per scheduled Poisson arrival until the
// configured duration of schedule has been offered, then folds the
// pacer's lateness accounting into the report. The arrival count is a
// function of (seed, rate, duration) alone — the system under test never
// shrinks the offered load, it only makes arrivals late.
func (e *env) runOpenLoop(fn func(scheduledAt int64, k int) error) error {
	p := loadgen.NewPacer(loadgen.NewArrivals(e.cfg.Seed, e.cfg.Rate))
	deadline := telemetry.Now() + e.cfg.Duration.Nanoseconds()
	for k := 0; ; k++ {
		scheduled, _ := p.Tick()
		if scheduled > deadline {
			break
		}
		e.rep.Offered++
		if err := fn(scheduled, k); err != nil {
			return err
		}
	}
	e.rep.Late, e.rep.LateMaxNs, _ = p.Late()
	return nil
}

// Smoke runs every scenario briefly against a loopback server and fails
// on any broken identity: a dispatch-counter mismatch, an in-band gap
// count that disagrees with the server's shed counter, a stale client
// view, or a run that completed nothing. It is the `make serving-smoke`
// entry point (dttbench -serving-smoke) and the suite's own test body.
func Smoke(w io.Writer) error {
	for _, s := range All() {
		rep, err := s.Run(Config{Rate: 2000, Duration: 250 * time.Millisecond, Seed: 1})
		if err != nil {
			return fmt.Errorf("serving smoke: %s: %w", s.Name(), err)
		}
		if rep.Completed == 0 {
			return fmt.Errorf("serving smoke: %s completed no operations over %d offered", s.Name(), rep.Offered)
		}
		if rep.Stale != 0 {
			return fmt.Errorf("serving smoke: %s left %d stale words after %d gap recoveries", s.Name(), rep.Stale, rep.Recoveries)
		}
		fmt.Fprintf(w, "serving %-12s offered=%d completed=%d notifies=%d gaps=%d recoveries=%d dispatch_p99=%.0fns result_p99=%.0fns\n",
			s.Name(), rep.Offered, rep.Completed, rep.Notifies, rep.Gaps, rep.Recoveries, rep.Dispatch.P99, rep.Result.P99)
	}
	return nil
}
