package serving

import (
	"fmt"

	"dtt/internal/mem"
	"dtt/internal/sched"
	"dtt/internal/serve"
)

// pubsub is fanout: one publisher multicasts each publish to N
// subscriber sessions. Server-side namespaces are physically disjoint
// per session — there is no shared topic region — so fanout is the
// publisher writing the same batch into every subscriber's own region,
// and each subscriber's support thread turning it into that session's
// CHANGE_NOTIFY stream. The reported Completed counts deliveries (N per
// publish), and trigger-to-result latency is per delivery, so the tail
// includes the last subscriber in the multicast — the number a fanout
// service actually promises.
type pubsub struct{}

func (pubsub) Name() string { return "pubsub" }

func (pubsub) Description() string {
	return "one publisher multicasts each publish to N subscriber sessions; latency is per delivery"
}

func (pubsub) Run(cfg Config) (Report, error) {
	e, err := newEnv("pubsub", cfg)
	if err != nil {
		return Report{}, err
	}
	cfg = e.cfg

	subs := make([]*serve.Session, 0, cfg.Sessions)
	handles := make([]uint32, 0, cfg.Sessions)
	last := make([][]mem.Word, cfg.Sessions)
	closeAll := func() {
		for _, cs := range subs {
			cs.Close()
		}
	}
	fail := func(err error) (Report, error) {
		closeAll()
		rep, _ := e.finish()
		return rep, err
	}
	for i := 0; i < cfg.Sessions; i++ {
		cs, err := serve.Dial(e.addr)
		if err != nil {
			return fail(err)
		}
		subs = append(subs, cs)
		h, err := cs.Attach("topic", cfg.Keys, 0, cfg.Keys)
		if err == nil {
			err = cs.Subscribe(h)
		}
		if err != nil {
			return fail(err)
		}
		handles = append(handles, h)
		last[i] = make([]mem.Word, cfg.Keys)
	}
	apply := func(i int) func(serve.Notify) {
		return func(n serve.Notify) { last[i][n.Index] = n.Value }
	}
	onGap := func(i int) func() error {
		return func() error {
			ws, err := subs[i].Read(handles[i], 0, cfg.Keys)
			if err != nil {
				return err
			}
			copy(last[i], ws)
			return nil
		}
	}

	src := sched.New(cfg.Seed ^ 0x9b5b)
	batch := make([]mem.Word, cfg.BatchWords)
	err = e.runOpenLoop(func(scheduledAt int64, k int) error {
		lo := int(src.Uint64() % uint64(cfg.Keys-cfg.BatchWords+1))
		for i := range batch {
			batch[i] = mem.Word(uint64(k+1)*0x9e3779b97f4a7c15 + uint64(lo+i))
		}
		for i, cs := range subs {
			if _, err := cs.Batch(handles[i], lo, batch); err != nil {
				return err
			}
			if err := cs.Wait(handles[i]); err != nil {
				return err
			}
			if err := e.drain(cs, apply(i), onGap(i)); err != nil {
				return err
			}
			// One delivery completed; its latency runs from the publish's
			// scheduled instant, so later subscribers in the multicast
			// carry the fanout cost in their tail.
			e.observeResult(scheduledAt)
			e.rep.Completed++
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}
	for i, cs := range subs {
		if err := cs.Barrier(); err != nil {
			return fail(err)
		}
		if err := e.drain(cs, apply(i), onGap(i)); err != nil {
			return fail(err)
		}
		truth, err := cs.Read(handles[i], 0, cfg.Keys)
		if err != nil {
			return fail(fmt.Errorf("serving: pubsub final read of subscriber %d: %w", i, err))
		}
		for j, w := range truth {
			if last[i][j] != w {
				e.rep.Stale++
			}
		}
	}
	closeAll()
	return e.finish()
}
