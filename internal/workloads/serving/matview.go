package serving

import (
	"fmt"

	"dtt/internal/mem"
	"dtt/internal/sched"
	"dtt/internal/serve"
)

// matview is materialized-view maintenance: the base table takes
// commutative increments through TUPDATE (the PR 8 update plane), and
// the client maintains a running aggregate — the sum over all keys —
// incrementally from merge-time notifications, never rescanning the
// table on the fast path. Each notify carries the merged word value, so
// the view update is total += new - old. A gap makes the aggregate
// silently wrong, which is exactly why the in-band gap count matters:
// on a gap the client re-reads the table once and rebuilds the view.
type matview struct{}

func (matview) Name() string { return "matview" }

func (matview) Description() string {
	return "TUpdateBatch(UpdAdd) deltas maintain a client-side running aggregate from merge-time notifies"
}

func (matview) Run(cfg Config) (Report, error) {
	e, err := newEnv("matview", cfg)
	if err != nil {
		return Report{}, err
	}
	cfg = e.cfg
	cs, err := serve.Dial(e.addr)
	if err != nil {
		rep, _ := e.finish()
		return rep, err
	}
	defer cs.Close()
	h, err := cs.Attach("table", cfg.Keys, 0, cfg.Keys)
	if err == nil {
		err = cs.Subscribe(h)
	}
	if err != nil {
		rep, _ := e.finish()
		return rep, err
	}

	view := make([]mem.Word, cfg.Keys)
	var total uint64 // wrapping, like UpdAdd itself
	apply := func(n serve.Notify) {
		total += uint64(n.Value) - uint64(view[n.Index])
		view[n.Index] = n.Value
	}
	onGap := func() error {
		ws, err := cs.Read(h, 0, cfg.Keys)
		if err != nil {
			return err
		}
		total = 0
		for i, w := range ws {
			view[i] = w
			total += uint64(w)
		}
		return nil
	}

	src := sched.New(cfg.Seed ^ 0x3a71e4)
	deltas := make([]mem.Word, cfg.BatchWords)
	err = e.runOpenLoop(func(scheduledAt int64, k int) error {
		lo := int(src.Uint64() % uint64(cfg.Keys-cfg.BatchWords+1))
		for i := range deltas {
			// Non-zero increments so every folded word changes at merge.
			deltas[i] = mem.Word(src.Uint64()%1000 + 1)
		}
		if _, err := cs.Update(h, lo, mem.UpdAdd, deltas); err != nil {
			return err
		}
		// Wait merges the privatized deltas; the triggers fire there and
		// the notifications are on the wire before the WAIT reply.
		if err := cs.Wait(h); err != nil {
			return err
		}
		if err := e.drain(cs, apply, onGap); err != nil {
			return err
		}
		e.observeResult(scheduledAt)
		e.rep.Completed++
		return nil
	})
	if err == nil {
		err = cs.Barrier()
	}
	if err == nil {
		err = e.drain(cs, apply, onGap)
	}
	if err != nil {
		rep, _ := e.finish()
		return rep, err
	}

	truth, err := cs.Read(h, 0, cfg.Keys)
	if err != nil {
		rep, _ := e.finish()
		return rep, fmt.Errorf("serving: matview final read: %w", err)
	}
	var want uint64
	for i, w := range truth {
		want += uint64(w)
		if view[i] != w {
			e.rep.Stale++
		}
	}
	if total != want {
		e.rep.Stale++
	}
	return e.finish()
}
