package serving

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestServingSmoke is the suite's own gate: every scenario runs end to
// end over a loopback server, and Smoke fails on any broken identity
// (dispatch counters, in-band gap accounting, stale client views).
func TestServingSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Smoke(&buf); err != nil {
		t.Fatalf("Smoke: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, s := range All() {
		if !strings.Contains(out, s.Name()) {
			t.Errorf("smoke output missing scenario %q:\n%s", s.Name(), out)
		}
	}
}

func TestServingByName(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name()] {
			t.Fatalf("duplicate scenario name %q", s.Name())
		}
		seen[s.Name()] = true
		got, ok := ByName(s.Name())
		if !ok || got.Name() != s.Name() {
			t.Errorf("ByName(%q) = %v, %v", s.Name(), got, ok)
		}
		if s.Description() == "" {
			t.Errorf("scenario %q has no description", s.Name())
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown scenario")
	}
}

// TestServingOfferedDeterministic: the offered-arrival count is a pure
// function of (seed, rate, duration) — the schedule is fixed before the
// system's behaviour is seen, so two runs of the same config offer the
// same load no matter how the runs' wall-clock pacing differed. That is
// the open-loop property the whole suite leans on.
func TestServingOfferedDeterministic(t *testing.T) {
	cfg := Config{Rate: 4000, Duration: 150 * time.Millisecond, Seed: 7}
	sc, _ := ByName("webcache")
	a, err := sc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered == 0 {
		t.Fatal("run offered no arrivals")
	}
	if a.Offered != b.Offered {
		t.Errorf("same config offered %d then %d arrivals; open-loop offered load must be deterministic", a.Offered, b.Offered)
	}
	if a.Completed != a.Offered {
		t.Errorf("webcache completed %d of %d offered; each arrival is one synchronous operation", a.Completed, a.Offered)
	}
}

// TestServingPubsubFanout: pubsub completes Sessions deliveries per
// publish, and its subscriber views all converge (Stale == 0).
func TestServingPubsubFanout(t *testing.T) {
	sc, _ := ByName("pubsub")
	rep, err := sc.Run(Config{Rate: 1000, Duration: 100 * time.Millisecond, Seed: 3, Sessions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatal("pubsub offered no publishes")
	}
	if rep.Completed != 3*rep.Offered {
		t.Errorf("pubsub completed %d deliveries for %d publishes x 3 subscribers", rep.Completed, rep.Offered)
	}
	if rep.Stale != 0 {
		t.Errorf("pubsub left %d stale subscriber words", rep.Stale)
	}
}

// TestServingLeaderboardNotifiesAreRecords: the monotone folds squash
// non-record scores silently, so the notify volume is strictly below the
// score volume once watermarks tighten.
func TestServingLeaderboardNotifiesAreRecords(t *testing.T) {
	sc, _ := ByName("leaderboard")
	cfg := Config{Rate: 2000, Duration: 200 * time.Millisecond, Seed: 5, Keys: 32, BatchWords: 8}
	rep, err := sc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered < 20 {
		t.Skipf("only %d arrivals; not enough traffic to see squashing", rep.Offered)
	}
	// Each arrival folds BatchWords scores into a max word AND a min word.
	folded := 2 * int64(cfg.BatchWords) * rep.Offered
	if rep.Notifies >= folded {
		t.Errorf("leaderboard notified %d times for %d folded scores; non-records must merge silently", rep.Notifies, folded)
	}
	if rep.Stale != 0 {
		t.Errorf("leaderboard left %d stale watermarks", rep.Stale)
	}
}
