package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// gzipWorkload models 164.gzip.
//
// SPEC drives gzip over the same input repeatedly at different compression
// levels, so the hash-chain match search — by far the dominant cost — runs
// again and again over data it has already seen. The kernel compresses a
// stream of blocks round after round; between rounds only a few blocks
// mutate. The DTT transform summarises each block into a signature word
// written with a triggering store: unchanged blocks produce a silent store
// and their recompression is skipped.
type gzipWorkload struct{}

func init() { register(gzipWorkload{}) }

func (gzipWorkload) Name() string  { return "gzip" }
func (gzipWorkload) Suite() string { return "SPEC CPU2000 int (164.gzip)" }
func (gzipWorkload) Description() string {
	return "block compression: recompress only blocks whose content signature changed"
}

// gzip dimensions.
const (
	gzipBlocksBase = 48
	gzipBlockWords = 96
	gzipMatchCost  = 5 // ALU ops per word of match search
	gzipMutateFrac = 3 // (frac-1)/frac of the blocks mutate per round
	gzipHashWindow = 8 // hash-chain window for the match model
)

type gzipState struct {
	sys    *mem.System
	seed   uint64
	blocks int
	data   *mem.Buffer // block contents, [block*blockWords + i]
	sig    *mem.Buffer // per-block content signature (trigger words in DTT)
	outSz  *mem.Buffer // per-block compressed size
	total  *mem.Buffer // [0] = total compressed size
}

// writeRound writes the round's content of block b and returns nothing;
// most blocks get identical content to the previous round.
func (st *gzipState) writeRound(round, b int) {
	h := uint64(b)*0x9e3779b97f4a7c15 + uint64(round)*0x94d049bb133111eb
	h ^= h >> 32
	mutated := h%gzipMutateFrac != 0
	base := b * gzipBlockWords
	for i := 0; i < gzipBlockWords; i++ {
		v := uint64(b)*131071 + uint64(i)*8191 + st.seed*uint64(i*i+3)
		if mutated {
			v += uint64(round) * 524287 * uint64(i%5)
		}
		st.data.Store(base+i, v%97)
		st.sys.Compute(1)
	}
}

// signature folds block b's content into one word — the programmer-supplied
// change summariser of the software-DTT idiom.
func (st *gzipState) signature(b int) mem.Word {
	base := b * gzipBlockWords
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < gzipBlockWords; i++ {
		h = (h ^ uint64(st.data.Load(base+i))) * 1099511628211
		st.sys.Compute(1)
	}
	return mem.Word(h)
}

// deflate models gzip's hash-chain match search over block b: for each
// position it scores candidate matches inside a sliding window and emits a
// literal/match decision, producing a compressed size.
func (st *gzipState) deflate(b int) {
	base := b * gzipBlockWords
	var size int64
	for i := 0; i < gzipBlockWords; i++ {
		cur := st.data.Load(base + i)
		bestLen := int64(0)
		lo := i - gzipHashWindow
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			st.sys.Compute(gzipMatchCost)
			if st.data.Load(base+j) == cur {
				bestLen = int64(i - j)
			}
		}
		if bestLen > 0 {
			size += 2 // match token
		} else {
			size += 3 // literal token
		}
		st.sys.Compute(1)
	}
	old := signed(st.outSz.Load(b))
	if size != old {
		st.outSz.Store(b, word(size))
		st.total.Store(0, word(signed(st.total.Load(0))+size-old))
	}
}

func newGzipState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *gzipState {
	size = size.withDefaults()
	st := &gzipState{sys: sys, seed: size.Seed, blocks: gzipBlocksBase * size.Scale}
	st.data = alloc("gzip.data", st.blocks*gzipBlockWords)
	st.sig = alloc("gzip.sig", st.blocks)
	st.outSz = alloc("gzip.outSz", st.blocks)
	st.total = alloc("gzip.total", 1)
	return st
}

func gzipChecksum(sum uint64, st *gzipState) uint64 {
	sum = checksum(sum, uint64(st.total.Peek(0)))
	for b := 0; b < st.blocks; b++ {
		sum = checksum(sum, uint64(st.outSz.Peek(b)))
	}
	return sum
}

func (gzipWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newGzipState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		for b := 0; b < st.blocks; b++ {
			st.writeRound(round, b)
			st.deflate(b) // recompress every block, changed or not
		}
		sum = checksum(sum, uint64(st.total.Load(0)))
	}
	return Result{Checksum: sum, Triggers: 0}, nil
}

func (gzipWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("gzip: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var sigRegion *core.Region
	st := newGzipState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "gzip.sig" {
			sigRegion = rt.NewRegion(name, n)
			return sigRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	compress := rt.Register("gzip.deflate", func(tg core.Trigger) {
		st.deflate(tg.Index)
	})
	if err := rt.Attach(compress, sigRegion, 0, st.blocks); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for round := 0; round < size.Iters; round++ {
		for b := 0; b < st.blocks; b++ {
			st.writeRound(round, b)
			sigRegion.TStore(b, st.signature(b))
		}
		rt.Wait(compress)
		sum = checksum(sum, uint64(st.total.Load(0)))
	}
	rt.Barrier()
	return Result{Checksum: sum, Triggers: st.blocks}, nil
}
