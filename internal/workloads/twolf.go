package workloads

import (
	"fmt"

	"dtt/internal/core"
	"dtt/internal/mem"
)

// twolfWorkload models 300.twolf's standard-cell placement.
//
// twolf evaluates row penalties — overlap between neighbouring cells in a
// row — for the whole design after every accepted move, although a move
// perturbs only one row. The DTT transform stores cell x-coordinates
// through triggering stores; a support thread recomputes the penalty of the
// moved cell's row. Rejected moves write the old coordinate back, which the
// triggering store detects as silent.
type twolfWorkload struct{}

func init() { register(twolfWorkload{}) }

func (twolfWorkload) Name() string  { return "twolf" }
func (twolfWorkload) Suite() string { return "SPEC CPU2000 int (300.twolf)" }
func (twolfWorkload) Description() string {
	return "row overlap penalties: recompute only the row whose cell moved"
}

// twolf dimensions.
const (
	twolfRowsBase    = 96
	twolfCellsPerRow = 24
	twolfRowSpan     = 4096
	twolfCellWidth   = 96
	twolfOverlapCost = 3   // ALU ops per neighbour comparison
	twolfAccept      = 20  // ALU ops of acceptance bookkeeping per move
	twolfCandidates  = 110 // candidate x-positions scored per move
)

type twolfState struct {
	sys    *mem.System
	rows   int
	x      *mem.Buffer // cell x-coordinates, [row*cellsPerRow + slot]
	rowPen *mem.Buffer // per-row overlap penalty
	total  *mem.Buffer // [0] = sum of penalties
}

func (st *twolfState) cells() int { return st.rows * twolfCellsPerRow }

// rowPenalty recomputes the overlap penalty of a row: the summed pairwise
// overlap of its cells in slot order.
func (st *twolfState) rowPenalty(row int) int64 {
	base := row * twolfCellsPerRow
	var pen int64
	prev := signed(st.x.Load(base))
	for s := 1; s < twolfCellsPerRow; s++ {
		cur := signed(st.x.Load(base + s))
		overlap := prev + twolfCellWidth - cur
		st.sys.Compute(twolfOverlapCost)
		if overlap > 0 {
			pen += overlap
		}
		prev = cur
	}
	return pen
}

// refreshRow recomputes a row's penalty and folds the delta into the total.
func (st *twolfState) refreshRow(row int) {
	old := signed(st.rowPen.Load(row))
	nw := st.rowPenalty(row)
	if nw != old {
		st.rowPen.Store(row, word(nw))
		st.total.Store(0, word(signed(st.total.Load(0))+nw-old))
		st.sys.Compute(1)
	}
}

// proposeMove picks the iteration's cell and its new x-coordinate by
// scoring candidate positions against the cell's row — the annealer's
// main-thread work, identical in both variants. A third of the proposals
// end in rejection and keep the old coordinate.
func (st *twolfState) proposeMove(iter int) (cell int, newX int64) {
	h := uint64(iter)*0x9e3779b97f4a7c15 + 0x1234
	h ^= h >> 31
	h *= 0xbf58476d1ce4e5b9
	cell = int(h % uint64(st.cells()))
	row := cell / twolfCellsPerRow
	bestScore := int64(1) << 62
	var bestX int64
	for c := 0; c < twolfCandidates; c++ {
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		x := int64(h % twolfRowSpan)
		// Hypothetical penalty of the row with the candidate position:
		// score the row plus a position-dependent bias.
		score := st.rowPenalty(row) + (x-int64(twolfRowSpan/2))*(x-int64(twolfRowSpan/2))/twolfRowSpan
		st.sys.Compute(4)
		if score < bestScore {
			bestScore, bestX = score, x
		}
	}
	st.sys.Compute(twolfAccept)
	if (h>>40)%3 == 0 {
		return cell, signed(st.x.Load(cell)) // rejected: silent store
	}
	return cell, bestX
}

func newTwolfState(sys *mem.System, size Size, alloc func(string, int) *mem.Buffer) *twolfState {
	size = size.withDefaults()
	st := &twolfState{sys: sys, rows: twolfRowsBase * size.Scale}
	st.x = alloc("twolf.x", st.cells())
	st.rowPen = alloc("twolf.rowPen", st.rows)
	st.total = alloc("twolf.total", 1)
	rng := NewRNG(size.Seed ^ 0x2f0)
	for c := 0; c < st.cells(); c++ {
		st.x.Poke(c, word(int64(rng.Intn(twolfRowSpan))))
	}
	var total int64
	for r := 0; r < st.rows; r++ {
		p := st.rowPenalty(r)
		st.rowPen.Poke(r, word(p))
		total += p
	}
	st.total.Poke(0, word(total))
	return st
}

func twolfChecksum(sum uint64, st *twolfState) uint64 {
	sum = checksum(sum, uint64(st.total.Peek(0)))
	for r := 0; r < st.rows; r++ {
		sum = checksum(sum, uint64(st.rowPen.Peek(r)))
	}
	for c := 0; c < st.cells(); c++ {
		sum = checksum(sum, uint64(st.x.Peek(c)))
	}
	return sum
}

func (twolfWorkload) RunBaseline(env *Env, size Size) (Result, error) {
	size = size.withDefaults()
	st := newTwolfState(env.Sys, size, env.Sys.Alloc)
	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		for r := 0; r < st.rows; r++ {
			st.refreshRow(r)
		}
		sum = checksum(sum, uint64(st.total.Load(0)))
		cell, newX := st.proposeMove(iter)
		st.x.Store(cell, word(newX))
	}
	for r := 0; r < st.rows; r++ {
		st.refreshRow(r)
	}
	return Result{Checksum: twolfChecksum(sum, st)}, nil
}

func (twolfWorkload) RunDTT(env *Env, size Size) (Result, error) {
	if env.RT == nil {
		return Result{}, fmt.Errorf("twolf: DTT run without a runtime")
	}
	size = size.withDefaults()
	rt := env.RT
	var xRegion *core.Region
	st := newTwolfState(env.Sys, size, func(name string, n int) *mem.Buffer {
		if name == "twolf.x" {
			xRegion = rt.NewRegion(name, n)
			return xRegion.Buffer()
		}
		return env.Sys.Alloc(name, n)
	})

	refresh := rt.Register("twolf.refresh", func(tg core.Trigger) {
		st.refreshRow(tg.Index / twolfCellsPerRow)
	})
	if err := rt.Attach(refresh, xRegion, 0, st.cells()); err != nil {
		return Result{}, err
	}

	sum := uint64(0)
	for iter := 0; iter < size.Iters; iter++ {
		rt.Wait(refresh)
		sum = checksum(sum, uint64(st.total.Load(0)))
		cell, newX := st.proposeMove(iter)
		xRegion.TStore(cell, word(newX))
	}
	rt.Barrier()
	return Result{Checksum: twolfChecksum(sum, st), Triggers: st.cells()}, nil
}
