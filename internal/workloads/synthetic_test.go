package workloads

import (
	"testing"

	"dtt/internal/core"
)

func TestSyntheticEquivalence(t *testing.T) {
	size := Size{Scale: 1, Iters: 10, Seed: 9}
	for _, change := range []float64{0, 0.3, 1} {
		sy := DefaultSynthetic()
		sy.ChangeFraction = change
		base, err := sy.RunBaseline(NewBaselineEnv(), size)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []core.Backend{core.BackendDeferred, core.BackendImmediate} {
			rt, err := core.New(core.Config{Backend: backend, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sy.RunDTT(NewDTTEnv(rt), size)
			if err != nil {
				t.Fatal(err)
			}
			rt.Close()
			if got.Checksum != base.Checksum {
				t.Fatalf("change=%v backend=%v: checksum %#x != %#x", change, backend, got.Checksum, base.Checksum)
			}
		}
	}
}

func TestSyntheticChangeFractionControlsSilence(t *testing.T) {
	size := Size{Scale: 1, Iters: 20, Seed: 9}
	measure := func(change float64) float64 {
		sy := DefaultSynthetic()
		sy.ChangeFraction = change
		rt, err := core.New(core.Config{Backend: core.BackendDeferred})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		if _, err := sy.RunDTT(NewDTTEnv(rt), size); err != nil {
			t.Fatal(err)
		}
		return rt.Stats().SilentFraction()
	}
	low := measure(0.9)  // almost everything changes: few silent
	high := measure(0.1) // almost nothing changes: mostly silent
	if !(high > low+0.3) {
		t.Fatalf("silent fraction not controlled by ChangeFraction: high=%v low=%v", high, low)
	}
	if all := measure(1); all > 0.1 {
		t.Fatalf("ChangeFraction=1 still %v silent", all)
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []Synthetic{
		{Inputs: 0, ChangeFraction: 0.5, ThreadOps: 1},
		{Inputs: 8, ChangeFraction: -0.1, ThreadOps: 1},
		{Inputs: 8, ChangeFraction: 1.5, ThreadOps: 1},
		{Inputs: 8, ChangeFraction: 0.5, ThreadOps: 0},
		{Inputs: 8, ChangeFraction: 0.5, ThreadOps: 1, ConsumeOps: -1},
	}
	for i, sy := range bad {
		if _, err := sy.RunBaseline(NewBaselineEnv(), DefaultSize()); err == nil {
			t.Errorf("config %d accepted: %+v", i, sy)
		}
	}
	rt, _ := core.New(core.Config{Backend: core.BackendDeferred})
	defer rt.Close()
	if _, err := bad[0].RunDTT(NewDTTEnv(rt), DefaultSize()); err == nil {
		t.Errorf("DTT accepted invalid config")
	}
	if _, err := DefaultSynthetic().RunDTT(NewBaselineEnv(), DefaultSize()); err == nil {
		t.Errorf("DTT without runtime accepted")
	}
}
