// Package advisor finds data-triggered-thread opportunities in an
// unmodified program. The paper (and its software follow-on) relies on the
// programmer or compiler to decide where triggering stores pay off; this
// package automates the profiling half of that decision: run the baseline
// once with the advisor attached and it ranks every allocation by how much
// recomputation a trigger on it could eliminate.
//
// The heuristic mirrors the paper's argument. A good trigger region is one
// that is read far more often than it genuinely changes: reads measure the
// computation that depends on the region, value-changing stores measure
// how often that computation would actually need to run. The score is
//
//	score = reads / max(1, changingStores) * (1 + silentFraction)
//
// — reads per real change, boosted when the program demonstrably rewrites
// the region with values already present.
package advisor

import (
	"fmt"
	"sort"

	"dtt/internal/mem"
	"dtt/internal/stats"
)

// regionStats accumulates one allocation's traffic.
type regionStats struct {
	buf       *mem.Buffer
	loads     int64
	redundant int64
	stores    int64
	silent    int64
	// last value per word index, for the redundant-load classification.
	last map[int]mem.Word
}

// Advisor observes a run and aggregates traffic per allocation. Attach it
// to the program's mem.System and run the unmodified baseline.
type Advisor struct {
	mem.NopProbe
	sys     *mem.System
	regions map[*mem.Buffer]*regionStats
	// cache the last-hit buffer: memory traffic is strongly clustered.
	lastBuf *mem.Buffer
}

// New returns an Advisor for sys.
func New(sys *mem.System) *Advisor {
	return &Advisor{sys: sys, regions: make(map[*mem.Buffer]*regionStats)}
}

func (a *Advisor) statsFor(addr mem.Addr) *regionStats {
	b := a.lastBuf
	if b == nil || addr < b.Base() || addr >= b.Addr(b.Len()) {
		b = a.sys.BufferAt(addr)
		if b == nil {
			return nil
		}
		a.lastBuf = b
	}
	rs := a.regions[b]
	if rs == nil {
		rs = &regionStats{buf: b, last: make(map[int]mem.Word)}
		a.regions[b] = rs
	}
	return rs
}

// OnLoad classifies the load against the region's last-seen value.
func (a *Advisor) OnLoad(addr mem.Addr, v mem.Word) {
	rs := a.statsFor(addr)
	if rs == nil {
		return
	}
	rs.loads++
	i := rs.buf.Index(addr)
	if prev, ok := rs.last[i]; ok && prev == v {
		rs.redundant++
	}
	rs.last[i] = v
}

// OnStore aggregates the store.
func (a *Advisor) OnStore(addr mem.Addr, _, _ mem.Word, silent bool) {
	rs := a.statsFor(addr)
	if rs == nil {
		return
	}
	rs.stores++
	if silent {
		rs.silent++
	}
}

// Candidate is one ranked allocation.
type Candidate struct {
	// Name is the allocation name.
	Name string
	// Words is the allocation size.
	Words int
	// Loads, RedundantLoads, Stores and SilentStores are raw counts.
	Loads, RedundantLoads, Stores, SilentStores int64
	// ChangingStores is Stores minus SilentStores.
	ChangingStores int64
	// Score is the ranking heuristic; higher means a better trigger.
	Score float64
}

// SilentFraction returns SilentStores/Stores (0 for an unwritten region).
func (c Candidate) SilentFraction() float64 {
	if c.Stores == 0 {
		return 0
	}
	return float64(c.SilentStores) / float64(c.Stores)
}

// ReadsPerChange returns Loads per value-changing store.
func (c Candidate) ReadsPerChange() float64 {
	ch := c.ChangingStores
	if ch < 1 {
		ch = 1
	}
	return float64(c.Loads) / float64(ch)
}

// Candidates returns every written-and-read allocation ranked by Score,
// best first. Write-only and read-only allocations are excluded: a trigger
// needs both a producer and a dependent computation.
func (a *Advisor) Candidates() []Candidate {
	var out []Candidate
	for _, rs := range a.regions {
		if rs.stores == 0 || rs.loads == 0 {
			continue
		}
		c := Candidate{
			Name:           rs.buf.Name(),
			Words:          rs.buf.Len(),
			Loads:          rs.loads,
			RedundantLoads: rs.redundant,
			Stores:         rs.stores,
			SilentStores:   rs.silent,
			ChangingStores: rs.stores - rs.silent,
		}
		c.Score = c.ReadsPerChange() * (1 + c.SilentFraction())
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Table renders the ranked candidates.
func Table(cands []Candidate) *stats.Table {
	tb := stats.NewTable("DTT trigger-candidate analysis (best first)",
		"region", "words", "loads", "redund%", "stores", "silent%", "reads/change", "score")
	for _, c := range cands {
		redund := 0.0
		if c.Loads > 0 {
			redund = float64(c.RedundantLoads) / float64(c.Loads)
		}
		tb.AddRow(c.Name, c.Words, c.Loads,
			fmt.Sprintf("%.1f", 100*redund),
			c.Stores,
			fmt.Sprintf("%.1f", 100*c.SilentFraction()),
			fmt.Sprintf("%.1f", c.ReadsPerChange()),
			fmt.Sprintf("%.0f", c.Score))
	}
	return tb
}

var _ mem.Probe = (*Advisor)(nil)
