package advisor

import (
	"testing"

	"dtt/internal/mem"
)

func TestRanksReadMostlyRegionFirst(t *testing.T) {
	sys := mem.NewSystem()
	hot := sys.Alloc("config", 4)   // written rarely, read constantly
	churn := sys.Alloc("buffer", 4) // rewritten every round
	a := New(sys)
	sys.AttachProbe(a)

	hot.Store(0, 1)
	for round := 0; round < 50; round++ {
		churn.Store(0, mem.Word(round))
		for i := 0; i < 20; i++ {
			hot.Load(0)
			churn.Load(0)
		}
	}
	cands := a.Candidates()
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	if cands[0].Name != "config" {
		t.Fatalf("top candidate = %s, want config", cands[0].Name)
	}
	if !(cands[0].Score > cands[1].Score) {
		t.Fatalf("scores not ordered: %v vs %v", cands[0].Score, cands[1].Score)
	}
}

func TestSilentStoresBoostScore(t *testing.T) {
	sys := mem.NewSystem()
	silent := sys.Alloc("silent", 1)
	noisy := sys.Alloc("noisy", 1)
	a := New(sys)
	sys.AttachProbe(a)
	for round := 0; round < 40; round++ {
		silent.Store(0, 7)                // same value: silent after the first
		noisy.Store(0, mem.Word(round%2)) // alternates: every store changes
		silent.Load(0)
		noisy.Load(0)
	}
	cands := a.Candidates()
	if cands[0].Name != "silent" {
		t.Fatalf("top = %s, want silent", cands[0].Name)
	}
	if cands[0].SilentFraction() < 0.9 {
		t.Fatalf("silent fraction = %v", cands[0].SilentFraction())
	}
}

func TestExcludesOneSidedRegions(t *testing.T) {
	sys := mem.NewSystem()
	writeOnly := sys.Alloc("writeOnly", 1)
	readOnly := sys.Alloc("readOnly", 1)
	readOnly.Poke(0, 5)
	both := sys.Alloc("both", 1)
	a := New(sys)
	sys.AttachProbe(a)
	writeOnly.Store(0, 1)
	readOnly.Load(0)
	both.Store(0, 1)
	both.Load(0)
	cands := a.Candidates()
	if len(cands) != 1 || cands[0].Name != "both" {
		t.Fatalf("candidates = %+v, want only 'both'", cands)
	}
}

func TestCandidateHelpers(t *testing.T) {
	c := Candidate{Loads: 100, Stores: 10, SilentStores: 5, ChangingStores: 5}
	if c.SilentFraction() != 0.5 {
		t.Fatalf("SilentFraction = %v", c.SilentFraction())
	}
	if c.ReadsPerChange() != 20 {
		t.Fatalf("ReadsPerChange = %v", c.ReadsPerChange())
	}
	z := Candidate{Loads: 7}
	if z.SilentFraction() != 0 || z.ReadsPerChange() != 7 {
		t.Fatalf("zero-store helpers wrong: %v %v", z.SilentFraction(), z.ReadsPerChange())
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table([]Candidate{{Name: "r", Words: 8, Loads: 10, Stores: 2, SilentStores: 1, ChangingStores: 1, Score: 15}})
	if tb.Rows() != 1 || tb.Cell(0, 0) != "r" {
		t.Fatalf("table = %s", tb.String())
	}
}

func TestUnmappedTrafficIgnored(t *testing.T) {
	sys := mem.NewSystem()
	a := New(sys)
	a.OnLoad(0, 1) // address 0 is never mapped
	a.OnStore(0, 0, 1, false)
	if len(a.Candidates()) != 0 {
		t.Fatalf("unmapped traffic created a candidate")
	}
}
