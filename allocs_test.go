package dtt_test

// Allocation regression tests for the triggering-store fast paths. These run
// in plain `go test`, so an allocs/op regression fails CI loudly rather than
// only showing up in benchmark output someone has to read.

import (
	"testing"

	"dtt"
)

// allocRuntime builds the same shape as the BenchmarkTStore* family: one
// attached 1024-word region, one unattached region, deferred backend.
func allocRuntime(t *testing.T, telemetry bool) (*dtt.Runtime, *dtt.Region, *dtt.Region) {
	t.Helper()
	rt, err := dtt.New(dtt.Config{Backend: dtt.BackendDeferred, QueueCapacity: 2048, Telemetry: telemetry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	hot := rt.NewRegion("hot", 1024)
	cold := rt.NewRegion("cold", 64)
	id := rt.Register("noop", func(dtt.Trigger) {})
	if err := rt.Attach(id, hot, 0, 1024); err != nil {
		t.Fatal(err)
	}
	// Warm the runtime's internal structures (queue per-thread counters,
	// TQST slice, lookup scratch, dedup map buckets) so the measurements
	// below see the steady state the fast-path contract is about.
	for i := 0; i < 1024; i++ {
		hot.TStore(i, 1)
	}
	rt.Barrier()
	return rt, hot, cold
}

// assertFastPathAllocs measures the four fast paths against the runtime
// label (telemetry off/on): both configurations promise 0 allocs/op.
func assertFastPathAllocs(t *testing.T, label string, telemetry bool) {
	rt, hot, cold := allocRuntime(t, telemetry)

	// Silent store: value unchanged, thread squashed before dispatch.
	if got := testing.AllocsPerRun(200, func() { hot.TStore(0, 1) }); got != 0 {
		t.Errorf("%s: silent tstore allocates %.1f allocs/op, want 0", label, got)
	}

	// Changing store: full fire -> lookup -> enqueue -> drain path.
	var v dtt.Word = 1
	if got := testing.AllocsPerRun(20, func() {
		v++
		for i := 0; i < 1024; i++ {
			hot.TStore(i, v)
		}
		rt.Barrier()
	}); got != 0 {
		t.Errorf("%s: changing tstore+drain allocates %.1f allocs/op, want 0", label, got)
	}

	// Squash path: a pending entry for the same address already queued.
	hot.TStore(0, 1_000_000)
	var w dtt.Word
	if got := testing.AllocsPerRun(200, func() {
		w++
		hot.TStore(0, 2_000_000+w)
	}); got != 0 {
		t.Errorf("%s: squashing tstore allocates %.1f allocs/op, want 0", label, got)
	}
	rt.Barrier()

	// Uncovered store: changing value, but no attachment covers the address,
	// so the registry pre-check must reject it without touching rt.mu.
	var u dtt.Word
	if got := testing.AllocsPerRun(200, func() {
		u++
		cold.TStore(0, u)
	}); got != 0 {
		t.Errorf("%s: uncovered tstore allocates %.1f allocs/op, want 0", label, got)
	}
}

// assertBatchFastPathAllocs holds TStoreBatch/TStoreRange to the same
// 0 allocs/op contract on every outcome: all-silent batches, all-changing
// batches (with drain), and batches whose every word squashes into a
// pending entry. The grouping scratch comes from the runtime's pool, so
// after one warm batch the steady state allocates nothing.
func assertBatchFastPathAllocs(t *testing.T, label string, telemetry bool) {
	rt, hot, cold := allocRuntime(t, telemetry)

	const batch = 64
	var vals [batch]dtt.Word

	// Warm the batch scratch (pool, fired slice capacity).
	for i := range vals {
		vals[i] = 1
	}
	hot.TStoreBatch(0, vals[:])
	rt.Barrier()

	// All-silent batch: every word already holds its value.
	if got := testing.AllocsPerRun(200, func() { hot.TStoreBatch(0, vals[:]) }); got != 0 {
		t.Errorf("%s: silent batch allocates %.1f allocs/op, want 0", label, got)
	}

	// All-changing batch: fire -> group -> enqueue -> drain.
	var v dtt.Word = 1
	if got := testing.AllocsPerRun(20, func() {
		v++
		for i := range vals {
			vals[i] = v
		}
		for lo := 0; lo < 1024; lo += batch {
			hot.TStoreRange(lo, lo+batch, vals[:])
		}
		rt.Barrier()
	}); got != 0 {
		t.Errorf("%s: changing batch+drain allocates %.1f allocs/op, want 0", label, got)
	}

	// Squash path: pending entries already queued for every batch address.
	for i := range vals {
		vals[i] = 1_000_000
	}
	hot.TStoreBatch(0, vals[:])
	var w dtt.Word
	if got := testing.AllocsPerRun(200, func() {
		w++
		for i := range vals {
			vals[i] = 2_000_000 + w
		}
		hot.TStoreBatch(0, vals[:])
	}); got != 0 {
		t.Errorf("%s: squashing batch allocates %.1f allocs/op, want 0", label, got)
	}
	rt.Barrier()

	// Uncovered batch: changing values, no attachments.
	var u dtt.Word
	if got := testing.AllocsPerRun(200, func() {
		u++
		vals[0] = u
		cold.TStoreBatch(0, vals[:8])
	}); got != 0 {
		t.Errorf("%s: uncovered batch allocates %.1f allocs/op, want 0", label, got)
	}
}

func TestTStoreFastPathAllocs(t *testing.T) {
	assertFastPathAllocs(t, "telemetry off", false)
}

// TestTStoreBatchFastPathAllocs gates the batched paths the same way the
// scalar gates above do; make ci's allocs gate runs both.
func TestTStoreBatchFastPathAllocs(t *testing.T) {
	assertBatchFastPathAllocs(t, "telemetry off", false)
}

func TestTStoreBatchFastPathAllocsTelemetry(t *testing.T) {
	assertBatchFastPathAllocs(t, "telemetry on", true)
}

// TestTStoreFastPathAllocsTelemetry holds the telemetry plane to the same
// standard: histogram observes are atomic adds into preallocated buckets,
// the enqueue clock is a monotonic read, and pprof label contexts are
// precomputed at Register — so turning telemetry on must not add a single
// allocation to any triggering-store path.
func TestTStoreFastPathAllocsTelemetry(t *testing.T) {
	assertFastPathAllocs(t, "telemetry on", true)
}

// assertUpdateFastPathAllocs holds the commutative-update plane to the
// same 0 allocs/op contract: producer-side folds (scalar and batch) after
// the stripe cells are lazily sized, and whole fold→merge→drain cycles —
// the merge scratch and inline list are plane- and pool-owned.
func assertUpdateFastPathAllocs(t *testing.T, label string, telemetry bool) {
	rt, hot, cold := allocRuntime(t, telemetry)

	const batch = 64
	var vals [batch]dtt.Word
	for i := range vals {
		vals[i] = 1
	}
	// Warm the update plane: first folds size the stripe cells and the
	// merge scratch; a Barrier warms the merge path and inline pool.
	hot.TUpdate(0, dtt.UpdAdd, 1)
	hot.TUpdateBatch(0, dtt.UpdAdd, vals[:])
	cold.TUpdate(0, dtt.UpdAdd, 1)
	rt.Barrier()

	// Producer-side fold: stripe lock + cell write, nothing shared.
	if got := testing.AllocsPerRun(200, func() { hot.TUpdate(0, dtt.UpdAdd, 1) }); got != 0 {
		t.Errorf("%s: scalar fold allocates %.1f allocs/op, want 0", label, got)
	}
	rt.Barrier()

	// Batched fold over a span.
	if got := testing.AllocsPerRun(200, func() { hot.TUpdateBatch(0, dtt.UpdAdd, vals[:]) }); got != 0 {
		t.Errorf("%s: batched fold allocates %.1f allocs/op, want 0", label, got)
	}
	rt.Barrier()

	// Full cycle: fold, merge at the sync point, fire and drain.
	if got := testing.AllocsPerRun(20, func() {
		for lo := 0; lo < 1024; lo += batch {
			hot.TUpdateBatch(lo, dtt.UpdAdd, vals[:])
		}
		rt.Barrier()
	}); got != 0 {
		t.Errorf("%s: fold+merge+drain cycle allocates %.1f allocs/op, want 0", label, got)
	}

	// Uncovered fold+merge: merge stores that fire no one.
	if got := testing.AllocsPerRun(200, func() {
		cold.TUpdate(0, dtt.UpdAdd, 1)
		rt.Barrier()
	}); got != 0 {
		t.Errorf("%s: uncovered fold+merge allocates %.1f allocs/op, want 0", label, got)
	}
}

func TestTUpdateFastPathAllocs(t *testing.T) {
	assertUpdateFastPathAllocs(t, "telemetry off", false)
}

func TestTUpdateFastPathAllocsTelemetry(t *testing.T) {
	assertUpdateFastPathAllocs(t, "telemetry on", true)
}
